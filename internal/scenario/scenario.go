// Package scenario turns the static fleet engine into a day in
// production: a declarative, time-phased workload description — a
// sectioned key=value file in the tradition of simulator configs
// (SESC's .conf sections, HPL's HPL.dat) — parsed into a timeline of
// phases and executed phase by phase on internal/fleet.
//
// Each phase is a window on the scenario's production clock. It can
// change the active session population (absolute targets, arrival
// rates, explicit arrivals/departures, churn), derate access-network
// cells (a brownout), and resize or kill the shared remote render
// cluster (a zero-GPU phase is a total outage; the admission layer
// fails the fleet over to local-only rendering). Sessions are carried
// across phase boundaries: a user who arrived in the morning phase is
// still there — same device, same network, same identity — during the
// evening flash crowd, re-simulated each phase with a seed derived
// deterministically from (base seed, session index, phase index), so
// the whole timeline is reproducible bit-for-bit for any worker
// count.
//
// Twelve built-in scenarios ship with the package: steady, diurnal,
// flash-crowd, net-brownout, cluster-outage-failover, churn, the
// 20,000-session mega-steady scale proof, the 1,000,000-session
// mixed-fidelity giga-steady proof, and the grid timelines
// edge-regional-outage, edge-imbalance, edge-autoscale-flashcrowd and
// capacity-probe. They are written in the same file format the parser
// accepts, so they double as format documentation and parser test
// vectors (BuiltinNames/GridBuiltinNames enumerate them; a registry
// test keeps this comment, the CLIs' -list output and the README
// tables in sync).
//
// A grid scenario may additionally declare an [slo] section (quality
// targets reported per phase) and autoscale.* keys, which close the
// loop: internal/autoscale watches each phase window's metrics against
// the SLO and resizes the grid's clusters for the next window.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"qvr/internal/autoscale"
	"qvr/internal/edge"
	"qvr/internal/fleet"
	"qvr/internal/netsim"
	"qvr/internal/pipeline"
)

// Scenario is a parsed, validated timeline description.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Mix names the fleet population new sessions are drawn from
	// (fleet.MixByName); phases may override it for their arrivals.
	Mix string
	// Design is the rendering system every session runs.
	Design pipeline.Design
	// Seed is the base seed every derived seed flows from.
	Seed int64
	// GPUs sizes the shared remote cluster; -1 disables the admission
	// layer entirely (every session keeps a private cluster), 0 means
	// the cluster is down from the start. Phases may override. Mutually
	// exclusive with Topology: a scenario is either single-cluster or
	// grid, not both.
	GPUs int
	// Topology declares the geo-distributed edge render grid, one
	// [cluster NAME] section per site. A non-empty topology switches
	// the timeline to grid mode: placement replaces the single-cluster
	// admission layer, and phases resize/derate named sites instead of
	// flipping the shared GPU count.
	Topology edge.Topology
	// Placement names the grid's placement policy
	// (edge.PolicyByName); "" means the default score policy.
	Placement string
	// SLO declares the timeline's quality-of-experience targets (the
	// [slo] section); nil means no targets, and phase reports carry no
	// attainment verdicts.
	SLO *fleet.SLO
	// Autoscale enables the closed-loop capacity controller
	// (autoscale.* keys). Grid mode only, and it needs an SLO to
	// provision against; nil means capacity stays as declared. The
	// controller's SLO field is ignored — the scenario's own SLO wins.
	Autoscale *autoscale.Config
	// MigrationPenaltyMs is the one-time handoff stall charged to each
	// migrated session, in milliseconds; -1 means the edge default.
	MigrationPenaltyMs float64
	// SessionsPerGPU is the admission layer's per-GPU session
	// capacity; 0 uses the fleet default.
	SessionsPerGPU int
	// CellCapacity is sessions per network cell before bandwidth
	// sharing; 0 means uncontended cells.
	CellCapacity int
	// Frames/Warmup are the per-session measured and warmup frame
	// counts simulated in each phase window.
	Frames, Warmup int
	// Fidelity declares the mixed-fidelity fast path (the [fidelity]
	// section): sessions run through the calibrated analytic surrogate
	// except for a stratified exact-DES sample cross-checked per
	// metric. Nil means every session runs the exact simulation.
	Fidelity *Fidelity
	// Phases is the timeline, in order.
	Phases []Phase
}

// Fidelity is the [fidelity] section: the mixed-fidelity contract a
// scenario declares for itself.
type Fidelity struct {
	// ExactFraction is the per-class share of sessions routed through
	// the exact DES as the refutation sample (exact-fraction key).
	// Must be in (0, 1]; every class contributes at least one session.
	ExactFraction float64
	// Calibration is the exact runs per calibration class that build
	// the surrogate's exemplar table (calibration key); 0 = default.
	Calibration int
	// Lean switches the timeline to the lean fleet engine: specs are
	// minted per index inside the workers and per-session retained
	// state shrinks to two floats — the million-session mode. Lean
	// timelines must be plain (no grid, no admission cluster, no cell
	// sharing, no autoscale, no per-phase mix/gpus/net-scale): those
	// layers need the materialized population.
	Lean bool
	// Tolerance is the per-metric error budget (tolerance.* keys);
	// zero fields take the fleet defaults.
	Tolerance fleet.Tolerance
}

// Phase is one window of the timeline.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// DurationSeconds is the phase's length on the production clock.
	// It scales rate-based arrivals and is the unit recovery time is
	// measured in; the simulated frames are a sampled window within
	// the phase.
	DurationSeconds float64
	// Sessions is the target active session count at the start of the
	// phase (-1 = carry the previous phase's population). When the
	// carried population is over target, the oldest sessions log off;
	// under target, fresh sessions arrive.
	Sessions int
	// Arrive adds this many fresh sessions; ArrivalRate adds
	// round(rate * duration) more. Both apply before the Sessions
	// target is enforced.
	Arrive      int
	ArrivalRate float64
	// Depart logs off this many of the oldest carried sessions at
	// phase start.
	Depart int
	// Churn replaces this fraction (0..1) of the carried population
	// with fresh arrivals: the departing users are the oldest, the
	// replacements are brand-new sessions with new seeds.
	Churn float64
	// Mix overrides the scenario mix for this phase's arrivals ("" =
	// scenario default).
	Mix string
	// GPUs overrides the shared cluster size for this phase (-1 =
	// scenario default). 0 models a cluster outage: the admission
	// layer fails every session over to local-only rendering.
	GPUs int
	// Frames overrides the per-session measured frames for this phase
	// (0 = scenario default).
	Frames int
	// NetScale derates named network conditions for the duration of
	// the phase: condition name -> bandwidth share factor. Factors are
	// clamped by netsim.Condition.Scaled, so 0 is a blackout-grade
	// derate, not a divide-by-zero.
	NetScale map[string]float64
	// ClusterGPUs resizes named edge clusters for this phase (grid
	// mode): cluster name -> chiplet count, 0 = a site outage.
	// Omitted sites keep their declared topology size.
	ClusterGPUs map[string]int
	// ClusterDerate scales named edge clusters' capacity and per-GPU
	// throughput for this phase (grid mode): cluster name -> factor in
	// [0, 1]. 0 is an outage-grade derate.
	ClusterDerate map[string]float64
}

// Validate checks the scenario against the fleet/netsim catalogs so a
// hand-built or hand-edited scenario fails fast with a message naming
// the offending section, not deep inside a phase run.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", sc.Name)
	}
	if sc.Frames <= 0 {
		return fmt.Errorf("scenario %q: frames must be positive, got %d", sc.Name, sc.Frames)
	}
	if sc.Warmup < 0 {
		return fmt.Errorf("scenario %q: warmup must not be negative, got %d", sc.Name, sc.Warmup)
	}
	if _, ok := fleet.MixByName(sc.Mix); !ok {
		return fmt.Errorf("scenario %q: unknown mix %q", sc.Name, sc.Mix)
	}
	gridMode := len(sc.Topology.Clusters) > 0
	if gridMode {
		if err := sc.Topology.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if sc.GPUs >= 0 {
			return fmt.Errorf("scenario %q: gpus and [cluster] sections are mutually exclusive (the grid owns all remote capacity)", sc.Name)
		}
		if sc.SessionsPerGPU > 0 {
			return fmt.Errorf("scenario %q: sessions-per-gpu is the single-cluster knob; set it per [cluster] section in grid mode", sc.Name)
		}
		if sc.Placement != "" {
			if _, ok := edge.PolicyByName(sc.Placement); !ok {
				return fmt.Errorf("scenario %q: unknown placement policy %q (have: %v)",
					sc.Name, sc.Placement, edge.PolicyNames())
			}
		}
		if ok := sc.MigrationPenaltyMs == -1 ||
			(sc.MigrationPenaltyMs >= 0 && !math.IsInf(sc.MigrationPenaltyMs, 0)); !ok {
			return fmt.Errorf("scenario %q: migration-penalty-ms %v must be non-negative and finite (or -1 for the default)",
				sc.Name, sc.MigrationPenaltyMs)
		}
	} else if sc.Placement != "" || sc.MigrationPenaltyMs > 0 {
		// A hand-built Scenario's zero-valued MigrationPenaltyMs must
		// pass (0 is harmless outside grid mode); the parser separately
		// rejects an explicit `migration-penalty-ms = 0` key in a
		// cluster-less file, where it can tell set from unset.
		return fmt.Errorf("scenario %q: placement/migration-penalty-ms need [cluster] sections", sc.Name)
	}
	if sc.SLO != nil {
		s := *sc.SLO
		if !s.Enabled() {
			return fmt.Errorf("scenario %q: [slo] declares no target; set p99-mtp-ms and/or min-90fps-share (every phase would vacuously pass)", sc.Name)
		}
		if !(s.P99MTPMs >= 0 && !math.IsInf(s.P99MTPMs, 0)) {
			return fmt.Errorf("scenario %q: slo p99-mtp-ms %v must be non-negative and finite", sc.Name, s.P99MTPMs)
		}
		if !(s.Min90FPSShare >= 0 && s.Min90FPSShare <= 1) {
			return fmt.Errorf("scenario %q: slo min-90fps-share %v out of [0,1]", sc.Name, s.Min90FPSShare)
		}
	}
	if sc.Autoscale != nil {
		if !gridMode {
			return fmt.Errorf("scenario %q: autoscale.* needs [cluster] sections (the controller scales the edge grid)", sc.Name)
		}
		if sc.SLO == nil || !sc.SLO.Enabled() {
			return fmt.Errorf("scenario %q: autoscale.* needs an [slo] section with at least one target to provision against", sc.Name)
		}
		if err := sc.Autoscale.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	if f := sc.Fidelity; f != nil {
		if !(f.ExactFraction > 0 && f.ExactFraction <= 1) {
			return fmt.Errorf("scenario %q: [fidelity] exact-fraction %v out of (0,1]", sc.Name, f.ExactFraction)
		}
		if f.Calibration < 0 {
			return fmt.Errorf("scenario %q: [fidelity] calibration must not be negative, got %d", sc.Name, f.Calibration)
		}
		for _, t := range []struct {
			key string
			v   float64
		}{{"tolerance.mtp", f.Tolerance.MTP}, {"tolerance.fps", f.Tolerance.FPS},
			{"tolerance.bytes", f.Tolerance.Bytes}, {"tolerance.share", f.Tolerance.Share}} {
			if !(t.v >= 0 && !math.IsInf(t.v, 0)) {
				return fmt.Errorf("scenario %q: [fidelity] %s %v must be non-negative and finite", sc.Name, t.key, t.v)
			}
		}
		if f.Lean {
			// Lean mode's contiguous-window population arithmetic and
			// transient spec minting hold only for plain uncontended
			// timelines; every exclusion here names a layer that needs
			// the materialized spec slice.
			switch {
			case gridMode:
				return fmt.Errorf("scenario %q: [fidelity] lean and [cluster] sections are mutually exclusive", sc.Name)
			case sc.GPUs >= 0:
				return fmt.Errorf("scenario %q: [fidelity] lean needs the admission layer off (omit gpus)", sc.Name)
			case sc.CellCapacity > 0:
				return fmt.Errorf("scenario %q: [fidelity] lean and cell-capacity are mutually exclusive", sc.Name)
			case sc.Autoscale != nil:
				return fmt.Errorf("scenario %q: [fidelity] lean and autoscale.* are mutually exclusive", sc.Name)
			}
			for i, ph := range sc.Phases {
				where := fmt.Sprintf("scenario %q phase %d (%q)", sc.Name, i, ph.Name)
				if ph.Mix != "" {
					return fmt.Errorf("%s: per-phase mix needs the materialized population ([fidelity] lean off)", where)
				}
				if ph.GPUs >= 0 {
					return fmt.Errorf("%s: gpus needs the admission layer ([fidelity] lean off)", where)
				}
				if len(ph.NetScale) > 0 {
					return fmt.Errorf("%s: net-scale needs the materialized population ([fidelity] lean off)", where)
				}
			}
		}
	}
	seen := map[string]bool{}
	for i, ph := range sc.Phases {
		where := fmt.Sprintf("scenario %q phase %d (%q)", sc.Name, i, ph.Name)
		if ph.Name == "" {
			return fmt.Errorf("scenario %q phase %d: missing name", sc.Name, i)
		}
		if seen[ph.Name] {
			return fmt.Errorf("%s: duplicate phase name", where)
		}
		seen[ph.Name] = true
		// Report fields are emitted unescaped (CSV rows, table
		// columns); keep phase names free of delimiters.
		if strings.ContainsAny(ph.Name, ",\"\n") {
			return fmt.Errorf("%s: name must not contain commas, quotes or newlines", where)
		}
		// Numeric checks are written fail-closed: NaN compares false
		// against everything, so we test for the valid range instead
		// of the invalid one (the parser rejects non-finite values,
		// but hand-built Scenarios reach here too).
		if !(ph.DurationSeconds > 0 && !math.IsInf(ph.DurationSeconds, 0)) {
			return fmt.Errorf("%s: duration must be positive and finite, got %v", where, ph.DurationSeconds)
		}
		if ph.Sessions < -1 {
			return fmt.Errorf("%s: sessions must be >= 0 (or unset), got %d", where, ph.Sessions)
		}
		if ph.Arrive < 0 || ph.Depart < 0 || !(ph.ArrivalRate >= 0 && !math.IsInf(ph.ArrivalRate, 0)) {
			return fmt.Errorf("%s: arrivals/departures must be non-negative and finite", where)
		}
		if !(ph.Churn >= 0 && ph.Churn <= 1) {
			return fmt.Errorf("%s: churn %v out of [0,1]", where, ph.Churn)
		}
		if ph.Mix != "" {
			if _, ok := fleet.MixByName(ph.Mix); !ok {
				return fmt.Errorf("%s: unknown mix %q", where, ph.Mix)
			}
		}
		for name, f := range ph.NetScale {
			if _, ok := netsim.ConditionByName(name); !ok {
				return fmt.Errorf("%s: net-scale names unknown condition %q", where, name)
			}
			if !(f >= 0 && !math.IsInf(f, 0)) {
				return fmt.Errorf("%s: net-scale.%s = %v must be non-negative and finite", where, name, f)
			}
		}
		if !gridMode && (len(ph.ClusterGPUs) > 0 || len(ph.ClusterDerate) > 0) {
			return fmt.Errorf("%s: cluster-gpus/cluster-derate need [cluster] sections", where)
		}
		if gridMode && ph.GPUs >= 0 {
			return fmt.Errorf("%s: gpus is the single-cluster knob; use cluster-gpus.<name> in grid mode", where)
		}
		for name, n := range ph.ClusterGPUs {
			if _, ok := sc.Topology.ClusterByName(name); !ok {
				return fmt.Errorf("%s: cluster-gpus names unknown cluster %q", where, name)
			}
			if n < 0 {
				return fmt.Errorf("%s: cluster-gpus.%s must not be negative, got %d", where, name, n)
			}
		}
		for name, f := range ph.ClusterDerate {
			if _, ok := sc.Topology.ClusterByName(name); !ok {
				return fmt.Errorf("%s: cluster-derate names unknown cluster %q", where, name)
			}
			if !(f >= 0 && f <= 1) {
				return fmt.Errorf("%s: cluster-derate.%s = %v out of [0,1]", where, name, f)
			}
		}
	}
	return nil
}
