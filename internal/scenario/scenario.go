// Package scenario turns the static fleet engine into a day in
// production: a declarative, time-phased workload description — a
// sectioned key=value file in the tradition of simulator configs
// (SESC's .conf sections, HPL's HPL.dat) — parsed into a timeline of
// phases and executed phase by phase on internal/fleet.
//
// Each phase is a window on the scenario's production clock. It can
// change the active session population (absolute targets, arrival
// rates, explicit arrivals/departures, churn), derate access-network
// cells (a brownout), and resize or kill the shared remote render
// cluster (a zero-GPU phase is a total outage; the admission layer
// fails the fleet over to local-only rendering). Sessions are carried
// across phase boundaries: a user who arrived in the morning phase is
// still there — same device, same network, same identity — during the
// evening flash crowd, re-simulated each phase with a seed derived
// deterministically from (base seed, session index, phase index), so
// the whole timeline is reproducible bit-for-bit for any worker
// count.
//
// Six built-in scenarios ship with the package: steady, diurnal,
// flash-crowd, net-brownout, cluster-outage-failover and churn. They
// are written in the same file format the parser accepts, so they
// double as format documentation and parser test vectors.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"qvr/internal/fleet"
	"qvr/internal/netsim"
	"qvr/internal/pipeline"
)

// Scenario is a parsed, validated timeline description.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Mix names the fleet population new sessions are drawn from
	// (fleet.MixByName); phases may override it for their arrivals.
	Mix string
	// Design is the rendering system every session runs.
	Design pipeline.Design
	// Seed is the base seed every derived seed flows from.
	Seed int64
	// GPUs sizes the shared remote cluster; -1 disables the admission
	// layer entirely (every session keeps a private cluster), 0 means
	// the cluster is down from the start. Phases may override.
	GPUs int
	// SessionsPerGPU is the admission layer's per-GPU session
	// capacity; 0 uses the fleet default.
	SessionsPerGPU int
	// CellCapacity is sessions per network cell before bandwidth
	// sharing; 0 means uncontended cells.
	CellCapacity int
	// Frames/Warmup are the per-session measured and warmup frame
	// counts simulated in each phase window.
	Frames, Warmup int
	// Phases is the timeline, in order.
	Phases []Phase
}

// Phase is one window of the timeline.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// DurationSeconds is the phase's length on the production clock.
	// It scales rate-based arrivals and is the unit recovery time is
	// measured in; the simulated frames are a sampled window within
	// the phase.
	DurationSeconds float64
	// Sessions is the target active session count at the start of the
	// phase (-1 = carry the previous phase's population). When the
	// carried population is over target, the oldest sessions log off;
	// under target, fresh sessions arrive.
	Sessions int
	// Arrive adds this many fresh sessions; ArrivalRate adds
	// round(rate * duration) more. Both apply before the Sessions
	// target is enforced.
	Arrive      int
	ArrivalRate float64
	// Depart logs off this many of the oldest carried sessions at
	// phase start.
	Depart int
	// Churn replaces this fraction (0..1) of the carried population
	// with fresh arrivals: the departing users are the oldest, the
	// replacements are brand-new sessions with new seeds.
	Churn float64
	// Mix overrides the scenario mix for this phase's arrivals ("" =
	// scenario default).
	Mix string
	// GPUs overrides the shared cluster size for this phase (-1 =
	// scenario default). 0 models a cluster outage: the admission
	// layer fails every session over to local-only rendering.
	GPUs int
	// Frames overrides the per-session measured frames for this phase
	// (0 = scenario default).
	Frames int
	// NetScale derates named network conditions for the duration of
	// the phase: condition name -> bandwidth share factor. Factors are
	// clamped by netsim.Condition.Scaled, so 0 is a blackout-grade
	// derate, not a divide-by-zero.
	NetScale map[string]float64
}

// Validate checks the scenario against the fleet/netsim catalogs so a
// hand-built or hand-edited scenario fails fast with a message naming
// the offending section, not deep inside a phase run.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", sc.Name)
	}
	if sc.Frames <= 0 {
		return fmt.Errorf("scenario %q: frames must be positive, got %d", sc.Name, sc.Frames)
	}
	if sc.Warmup < 0 {
		return fmt.Errorf("scenario %q: warmup must not be negative, got %d", sc.Name, sc.Warmup)
	}
	if _, ok := fleet.MixByName(sc.Mix); !ok {
		return fmt.Errorf("scenario %q: unknown mix %q", sc.Name, sc.Mix)
	}
	seen := map[string]bool{}
	for i, ph := range sc.Phases {
		where := fmt.Sprintf("scenario %q phase %d (%q)", sc.Name, i, ph.Name)
		if ph.Name == "" {
			return fmt.Errorf("scenario %q phase %d: missing name", sc.Name, i)
		}
		if seen[ph.Name] {
			return fmt.Errorf("%s: duplicate phase name", where)
		}
		seen[ph.Name] = true
		// Report fields are emitted unescaped (CSV rows, table
		// columns); keep phase names free of delimiters.
		if strings.ContainsAny(ph.Name, ",\"\n") {
			return fmt.Errorf("%s: name must not contain commas, quotes or newlines", where)
		}
		// Numeric checks are written fail-closed: NaN compares false
		// against everything, so we test for the valid range instead
		// of the invalid one (the parser rejects non-finite values,
		// but hand-built Scenarios reach here too).
		if !(ph.DurationSeconds > 0 && !math.IsInf(ph.DurationSeconds, 0)) {
			return fmt.Errorf("%s: duration must be positive and finite, got %v", where, ph.DurationSeconds)
		}
		if ph.Sessions < -1 {
			return fmt.Errorf("%s: sessions must be >= 0 (or unset), got %d", where, ph.Sessions)
		}
		if ph.Arrive < 0 || ph.Depart < 0 || !(ph.ArrivalRate >= 0 && !math.IsInf(ph.ArrivalRate, 0)) {
			return fmt.Errorf("%s: arrivals/departures must be non-negative and finite", where)
		}
		if !(ph.Churn >= 0 && ph.Churn <= 1) {
			return fmt.Errorf("%s: churn %v out of [0,1]", where, ph.Churn)
		}
		if ph.Mix != "" {
			if _, ok := fleet.MixByName(ph.Mix); !ok {
				return fmt.Errorf("%s: unknown mix %q", where, ph.Mix)
			}
		}
		for name, f := range ph.NetScale {
			if _, ok := netsim.ConditionByName(name); !ok {
				return fmt.Errorf("%s: net-scale names unknown condition %q", where, name)
			}
			if !(f >= 0 && !math.IsInf(f, 0)) {
				return fmt.Errorf("%s: net-scale.%s = %v must be non-negative and finite", where, name, f)
			}
		}
	}
	return nil
}
