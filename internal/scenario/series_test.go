package scenario

import (
	"bytes"
	"testing"

	"qvr/internal/obs"
	"qvr/internal/obs/series"
)

// TestSeriesWorkerInvariance: the flight-recorder stream of a full
// scenario run — gauges, per-cluster loads, counter deltas, SLO
// verdicts — must be byte-identical for any worker pool size, and its
// window deltas must sum to the final counter snapshot.
func TestSeriesWorkerInvariance(t *testing.T) {
	for _, name := range []string{"cluster-outage-failover", "edge-autoscale-flashcrowd"} {
		sc := mustBuiltin(t, name)
		var prev []byte
		for _, workers := range []int{1, 5} {
			reg := obs.New()
			rec := series.New(reg, 0)
			opt := tiny
			opt.Workers = workers
			opt.Obs = reg
			opt.Series = rec
			r := mustRun(t, sc, opt)
			if _, err := rec.Finish(); err != nil {
				t.Fatalf("%s workers=%d: window-sum audit: %v", name, workers, err)
			}
			got := rec.NDJSON()
			if prev != nil && !bytes.Equal(prev, got) {
				t.Fatalf("%s: workers=%d changed the series stream", name, workers)
			}
			prev = got
			if rec.Windows() != len(r.Phases) {
				t.Fatalf("%s: %d windows for %d phases", name, rec.Windows(), len(r.Phases))
			}
		}
		if sc.SLO != nil && !bytes.Contains(prev, []byte(`"slo_met"`)) {
			t.Errorf("%s: stream carries no SLO verdicts", name)
		}
	}
}

// TestSeriesCarriesGridAndScaleState: on the autoscaled grid
// scenario, windows must surface the per-cluster report and the scale
// events the report shows — the raw material of qvr-report's load and
// GPU-count charts.
func TestSeriesCarriesGridAndScaleState(t *testing.T) {
	sc := mustBuiltin(t, "edge-autoscale-flashcrowd")
	reg := obs.New()
	rec := series.New(reg, 0)
	opt := tiny
	opt.Obs = reg
	opt.Series = rec
	r := mustRun(t, sc, opt)
	if _, err := rec.Finish(); err != nil {
		t.Fatal(err)
	}
	stream := rec.NDJSON()
	if !bytes.Contains(stream, []byte(`"clusters":[{"name"`)) {
		t.Error("windows carry no per-cluster gauges")
	}
	if r.Autoscale != nil && len(r.Autoscale.Events) > 0 &&
		!bytes.Contains(stream, []byte(`"scale_events"`)) {
		t.Error("scale events reported but absent from the stream")
	}
}
