// Package scene models the rendering workloads the paper evaluates.
//
// The original evaluation replays DirectX/OpenGL API traces of real
// games (Table 3) and measures open-source high-quality VR apps
// (Table 1) on physical hardware. Neither the traces nor the graphics
// stacks exist here, so the substitute is a statistical workload model
// with two parts:
//
//  1. A per-app parameter record carrying the *published* statistics —
//     resolution, triangle count, draw-batch count, the interactive-
//     object workload share range f — plus two calibrated parameters
//     (shading cost and overdraw) fitted so the GPU timing model lands
//     on the paper's measured per-app local render times.
//
//  2. A per-frame dynamics model that makes the workload respond to
//     user motion the way the paper documents: scene complexity varies
//     smoothly with view direction (Fig. 8), interactive-object detail
//     grows as the user approaches (Fig. 5: the Nature tree goes from
//     12 ms to 26 ms), and the content density under the gaze center
//     modulates how much work a given fovea radius captures.
//
// All per-frame variation is a deterministic function of (app, view
// state), so identical motion traces reproduce identical workloads.
package scene

import (
	"fmt"
	"math"

	"qvr/internal/motion"
)

// App describes one benchmark application.
type App struct {
	Name string
	// Library is the rendering API of the original trace (Table 3).
	Library string
	// Width, Height are the per-eye resolution.
	Width, Height int
	// Triangles is the total visible-scene triangle count (mean).
	Triangles int
	// Batches is the draw-batch count (Table 3).
	Batches int
	// FMin, FMax bound the interactive-object share of frame rendering
	// latency (the f column of Table 1). Static collaborative rendering
	// renders exactly this share locally.
	FMin, FMax float64
	// ShadingCost is the relative per-fragment shading complexity
	// (1.0 = baseline). Calibrated against the paper's latency anchors.
	ShadingCost float64
	// Overdraw is the average depth complexity (fragments shaded per
	// output pixel).
	Overdraw float64
	// Entropy in (0,1] scales compressed frame size: busy outdoor
	// scenes compress worse than dark corridors.
	Entropy float64
	// ComplexityVar is the relative amplitude of view-direction-driven
	// workload variation (0 = static scene).
	ComplexityVar float64
	// LODBoost is the maximum triangle multiplier when the user is at
	// the closest interaction distance (Fig. 5 effect).
	LODBoost float64
	// InteractiveDesc names the pre-defined interactive objects used by
	// the static collaborative baseline (Table 1).
	InteractiveDesc string
	// Seed decorrelates the deterministic complexity fields across apps.
	Seed int64
}

// PixelsPerFrame returns the total pixels rendered per frame (both eyes).
func (a App) PixelsPerFrame() int { return 2 * a.Width * a.Height }

// String implements fmt.Stringer.
func (a App) String() string {
	return fmt.Sprintf("%s (%dx%d, %d tris, %d batches)", a.Name, a.Width, a.Height, a.Triangles, a.Batches)
}

// Table1Apps are the high-quality VR applications of Table 1, used for
// the motivation study (Fig. 3, Table 1, Fig. 5, Fig. 6).
var Table1Apps = []App{
	{
		Name: "Foveated3D", Library: "DirectX", Width: 1920, Height: 2160,
		Triangles: 231_000, Batches: 420,
		FMin: 0.16, FMax: 0.52,
		ShadingCost: 1.42, Overdraw: 2.0, Entropy: 0.78,
		ComplexityVar: 0.35, LODBoost: 2.6,
		InteractiveDesc: "9 Chess", Seed: 101,
	},
	{
		Name: "Viking", Library: "Unity", Width: 1920, Height: 2160,
		Triangles: 2_800_000, Batches: 1100,
		FMin: 0.10, FMax: 0.13,
		ShadingCost: 1.02, Overdraw: 2.1, Entropy: 0.74,
		ComplexityVar: 0.12, LODBoost: 1.3,
		InteractiveDesc: "1 Carriage", Seed: 102,
	},
	{
		Name: "Nature", Library: "Unity", Width: 1920, Height: 2160,
		Triangles: 1_400_000, Batches: 850,
		FMin: 0.10, FMax: 0.24,
		ShadingCost: 0.95, Overdraw: 2.2, Entropy: 0.82,
		ComplexityVar: 0.30, LODBoost: 2.2,
		InteractiveDesc: "1 Tree", Seed: 103,
	},
	{
		Name: "Sponza", Library: "VRWorks", Width: 1920, Height: 2160,
		Triangles: 282_000, Batches: 380,
		FMin: 0.001, FMax: 0.20,
		ShadingCost: 0.66, Overdraw: 2.0, Entropy: 0.62,
		ComplexityVar: 0.40, LODBoost: 2.4,
		InteractiveDesc: "Lion Shield", Seed: 104,
	},
	{
		Name: "SanMiguel", Library: "VRWorks", Width: 1920, Height: 2160,
		Triangles: 4_200_000, Batches: 1500,
		FMin: 0.06, FMax: 0.15,
		ShadingCost: 0.73, Overdraw: 2.1, Entropy: 0.80,
		ComplexityVar: 0.18, LODBoost: 1.6,
		InteractiveDesc: "4 Chairs, 1 Table", Seed: 105,
	},
}

// EvalApps are the gaming benchmarks of Table 3, used for the main
// evaluation (Fig. 12-15, Table 4). Shading cost and overdraw are
// calibrated so the 500 MHz full-frame local render times reproduce
// the paper's relative ordering (Doom3-L lightest, GRID heaviest).
var EvalApps = []App{
	{
		Name: "Doom3-H", Library: "OpenGL", Width: 1920, Height: 2160,
		Triangles: 400_000, Batches: 382,
		FMin: 0.08, FMax: 0.30,
		ShadingCost: 0.24, Overdraw: 1.5, Entropy: 0.58,
		ComplexityVar: 0.25, LODBoost: 1.8,
		InteractiveDesc: "monsters, weapons", Seed: 201,
	},
	{
		Name: "Doom3-L", Library: "OpenGL", Width: 1280, Height: 1600,
		Triangles: 400_000, Batches: 382,
		FMin: 0.08, FMax: 0.30,
		ShadingCost: 0.24, Overdraw: 1.5, Entropy: 0.58,
		ComplexityVar: 0.25, LODBoost: 1.8,
		InteractiveDesc: "monsters, weapons", Seed: 202,
	},
	{
		Name: "HL2-H", Library: "DirectX", Width: 1920, Height: 2160,
		Triangles: 2_200_000, Batches: 656,
		FMin: 0.10, FMax: 0.35,
		ShadingCost: 0.59, Overdraw: 2.0, Entropy: 0.66,
		ComplexityVar: 0.28, LODBoost: 2.0,
		InteractiveDesc: "NPCs, physics props", Seed: 203,
	},
	{
		Name: "HL2-L", Library: "DirectX", Width: 1280, Height: 1600,
		Triangles: 2_200_000, Batches: 656,
		FMin: 0.10, FMax: 0.35,
		ShadingCost: 0.59, Overdraw: 2.0, Entropy: 0.66,
		ComplexityVar: 0.28, LODBoost: 2.0,
		InteractiveDesc: "NPCs, physics props", Seed: 204,
	},
	{
		Name: "GRID", Library: "DirectX", Width: 1920, Height: 2160,
		Triangles: 3_600_000, Batches: 3680,
		FMin: 0.12, FMax: 0.40,
		ShadingCost: 1.05, Overdraw: 2.3, Entropy: 0.84,
		ComplexityVar: 0.35, LODBoost: 2.2,
		InteractiveDesc: "cars, cockpit", Seed: 205,
	},
	{
		Name: "UT3", Library: "DirectX", Width: 1920, Height: 2160,
		Triangles: 1_750_000, Batches: 1752,
		FMin: 0.10, FMax: 0.32,
		ShadingCost: 0.49, Overdraw: 2.0, Entropy: 0.70,
		ComplexityVar: 0.30, LODBoost: 2.0,
		InteractiveDesc: "players, projectiles", Seed: 206,
	},
	{
		Name: "Wolf", Library: "DirectX", Width: 1920, Height: 2160,
		Triangles: 3_400_000, Batches: 3394,
		FMin: 0.10, FMax: 0.35,
		ShadingCost: 0.86, Overdraw: 2.1, Entropy: 0.72,
		ComplexityVar: 0.32, LODBoost: 2.1,
		InteractiveDesc: "soldiers, vehicles", Seed: 207,
	},
}

// AppByName looks up an app in both catalogs.
func AppByName(name string) (App, bool) {
	for _, a := range Table1Apps {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range EvalApps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// FrameStats is the per-frame workload snapshot the GPU model and the
// LIWC consume.
type FrameStats struct {
	// VisibleTriangles is the triangle count submitted this frame after
	// view-dependent variation and interaction LOD.
	VisibleTriangles int
	// InteractiveShare is the fraction of frame workload belonging to
	// the pre-defined interactive objects (for the static baseline).
	InteractiveShare float64
	// GazeDensity is the relative content density under the gaze
	// center: >1 means the fovea sits on a busy region.
	GazeDensity float64
	// ViewComplexity is the relative whole-frame workload multiplier
	// (1 = catalog mean).
	ViewComplexity float64
	// LODFactor is the interaction-proximity triangle multiplier.
	LODFactor float64
	// Entropy is the frame's content entropy for the codec.
	Entropy float64
}

// State evolves an app's workload under a motion trace.
type State struct {
	app App
}

// NewState creates the workload dynamics for app.
func NewState(app App) *State { return &State{app: app} }

// App returns the underlying catalog entry.
func (s *State) App() App { return s.app }

// Frame computes the workload for the view described by the motion
// sample. It is a pure function of the sample, so replays of the same
// trace give identical workloads.
func (s *State) Frame(m motion.Sample) FrameStats {
	a := s.app

	yaw, pitch := viewAngles(m)

	// View-direction complexity: a smooth periodic field over the view
	// sphere. Different seeds give each app its own "world".
	vc := 1 + a.ComplexityVar*field2(yaw, pitch, a.Seed)

	// Interaction LOD: triangles scale up as the user closes in
	// (Fig. 5). At MaxDist the factor is 1; at zero distance LODBoost.
	lod := 1 + (a.LODBoost-1)/(1+m.InteractDist)

	// Gaze density: content density under the fovea center, a second
	// independent field sampled at the gaze position.
	gd := math.Exp(0.55 * field2(m.Gaze.X/20, m.Gaze.Y/20, a.Seed+7))
	gd = clamp(gd, 0.45, 2.4)

	// Interactive share tracks proximity within the app's f range:
	// close interaction animates the objects and raises their cost.
	prox := 1 / (1 + m.InteractDist) // 1 when touching, ->0 far away
	f := a.FMin + (a.FMax-a.FMin)*prox
	// A touch of view dependence keeps f moving frame to frame.
	f *= 1 + 0.1*field2(pitch, yaw, a.Seed+13)
	f = clamp(f, a.FMin, a.FMax)

	tris := float64(a.Triangles) * vc * lod

	return FrameStats{
		VisibleTriangles: int(tris),
		InteractiveShare: f,
		GazeDensity:      gd,
		ViewComplexity:   vc * lod,
		LODFactor:        lod,
		Entropy:          a.Entropy,
	}
}

// viewAngles extracts yaw and pitch (radians) of the forward direction.
func viewAngles(m motion.Sample) (yaw, pitch float64) {
	fwd := m.Head.Orientation.Forward()
	yaw = math.Atan2(-fwd.X, -fwd.Z)
	pitch = math.Asin(clamp(fwd.Y, -1, 1))
	return yaw, pitch
}

// field2 is a deterministic smooth field over R^2 with zero mean and
// values in [-1, 1]: a small sum of incommensurate sinusoids whose
// phases derive from the seed.
func field2(x, y float64, seed int64) float64 {
	s := float64(seed%997) * 0.6180339887
	v := 0.5*math.Sin(1.3*x+2.1*y+s) +
		0.3*math.Sin(2.9*x-1.7*y+2.3*s) +
		0.2*math.Sin(-1.1*x+3.3*y+4.1*s)
	return v
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
