package scene

import (
	"math"
	"testing"

	"qvr/internal/motion"
	"qvr/internal/vec"
)

func TestCatalogsComplete(t *testing.T) {
	if len(Table1Apps) != 5 {
		t.Errorf("Table1Apps has %d entries, want 5", len(Table1Apps))
	}
	if len(EvalApps) != 7 {
		t.Errorf("EvalApps has %d entries, want 7", len(EvalApps))
	}
	for _, a := range append(append([]App{}, Table1Apps...), EvalApps...) {
		if a.Width <= 0 || a.Height <= 0 || a.Triangles <= 0 || a.Batches <= 0 {
			t.Errorf("%s: incomplete geometry params", a.Name)
		}
		if a.FMin < 0 || a.FMax > 1 || a.FMin > a.FMax {
			t.Errorf("%s: bad f range [%v,%v]", a.Name, a.FMin, a.FMax)
		}
		if a.ShadingCost <= 0 || a.Overdraw < 1 {
			t.Errorf("%s: bad cost params", a.Name)
		}
		if a.Entropy <= 0 || a.Entropy > 1 {
			t.Errorf("%s: bad entropy %v", a.Name, a.Entropy)
		}
	}
}

func TestPublishedStatistics(t *testing.T) {
	// Spot-check the statistics the paper publishes.
	checks := []struct {
		name string
		tris int
	}{
		{"Viking", 2_800_000},
		{"SanMiguel", 4_200_000},
		{"Foveated3D", 231_000},
		{"Sponza", 282_000},
		{"Nature", 1_400_000},
	}
	for _, c := range checks {
		a, ok := AppByName(c.name)
		if !ok {
			t.Fatalf("%s missing from catalog", c.name)
		}
		if a.Triangles != c.tris {
			t.Errorf("%s triangles = %d, want %d", c.name, a.Triangles, c.tris)
		}
	}
	batches := map[string]int{
		"Doom3-H": 382, "Doom3-L": 382, "HL2-H": 656, "HL2-L": 656,
		"GRID": 3680, "UT3": 1752, "Wolf": 3394,
	}
	for name, want := range batches {
		a, ok := AppByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if a.Batches != want {
			t.Errorf("%s batches = %d, want %d", name, a.Batches, want)
		}
	}
}

func TestResolutions(t *testing.T) {
	hi, _ := AppByName("Doom3-H")
	lo, _ := AppByName("Doom3-L")
	if hi.Width != 1920 || hi.Height != 2160 {
		t.Errorf("Doom3-H resolution = %dx%d", hi.Width, hi.Height)
	}
	if lo.Width != 1280 || lo.Height != 1600 {
		t.Errorf("Doom3-L resolution = %dx%d", lo.Width, lo.Height)
	}
	if hi.PixelsPerFrame() != 2*1920*2160 {
		t.Errorf("PixelsPerFrame = %d", hi.PixelsPerFrame())
	}
}

func TestAppByNameMissing(t *testing.T) {
	if _, ok := AppByName("NoSuchGame"); ok {
		t.Error("lookup of missing app succeeded")
	}
}

func sampleAt(dist float64, gaze vec.Vec2, yaw float64) motion.Sample {
	return motion.Sample{
		Head:         motion.Pose{Orientation: vec.FromEuler(yaw, 0, 0)},
		Gaze:         gaze,
		InteractDist: dist,
	}
}

func TestFrameDeterministic(t *testing.T) {
	st := NewState(EvalApps[0])
	s := sampleAt(2, vec.Vec2{X: 5, Y: -3}, 0.4)
	a := st.Frame(s)
	b := st.Frame(s)
	if a != b {
		t.Errorf("same sample produced different stats: %+v vs %+v", a, b)
	}
}

func TestInteractionIncreasesWorkload(t *testing.T) {
	// The Fig. 5 effect: approaching an interactive object increases
	// triangle count and interactive share.
	nature, _ := AppByName("Nature")
	st := NewState(nature)
	far := st.Frame(sampleAt(6, vec.Vec2{}, 0))
	near := st.Frame(sampleAt(0.3, vec.Vec2{}, 0))
	if near.VisibleTriangles <= far.VisibleTriangles {
		t.Errorf("close triangles %d not > far %d", near.VisibleTriangles, far.VisibleTriangles)
	}
	if near.InteractiveShare <= far.InteractiveShare {
		t.Errorf("close f %v not > far %v", near.InteractiveShare, far.InteractiveShare)
	}
	// The paper reports roughly 2.2x latency growth for the tree; the
	// LOD factor should land in that neighbourhood.
	ratio := float64(near.VisibleTriangles) / float64(far.VisibleTriangles)
	if ratio < 1.3 || ratio > 3 {
		t.Errorf("near/far workload ratio = %v, want in [1.3, 3]", ratio)
	}
}

func TestInteractiveShareWithinRange(t *testing.T) {
	for _, a := range append(append([]App{}, Table1Apps...), EvalApps...) {
		st := NewState(a)
		g := motion.NewGenerator(motion.Intense, 31)
		for i := 0; i < 1000; i++ {
			s := g.Advance(1.0 / 90)
			fs := st.Frame(s)
			if fs.InteractiveShare < a.FMin-1e-9 || fs.InteractiveShare > a.FMax+1e-9 {
				t.Fatalf("%s: f=%v outside [%v,%v]", a.Name, fs.InteractiveShare, a.FMin, a.FMax)
			}
		}
	}
}

func TestViewComplexityVaries(t *testing.T) {
	st := NewState(EvalApps[4]) // GRID, high ComplexityVar
	lo, hi := math.Inf(1), math.Inf(-1)
	for yaw := 0.0; yaw < 6.28; yaw += 0.1 {
		fs := st.Frame(sampleAt(5, vec.Vec2{}, yaw))
		lo = math.Min(lo, fs.ViewComplexity)
		hi = math.Max(hi, fs.ViewComplexity)
	}
	if hi/lo < 1.2 {
		t.Errorf("view complexity barely varies: [%v, %v]", lo, hi)
	}
}

func TestStaticSceneWhenNoVariation(t *testing.T) {
	a := EvalApps[0]
	a.ComplexityVar = 0
	a.LODBoost = 1
	st := NewState(a)
	ref := st.Frame(sampleAt(5, vec.Vec2{}, 0)).VisibleTriangles
	for yaw := 0.0; yaw < 3; yaw += 0.5 {
		fs := st.Frame(sampleAt(1, vec.Vec2{}, yaw))
		if fs.VisibleTriangles != ref {
			t.Fatalf("static scene varied: %d vs %d", fs.VisibleTriangles, ref)
		}
	}
}

func TestGazeDensityBounded(t *testing.T) {
	for _, a := range EvalApps {
		st := NewState(a)
		g := motion.NewGenerator(motion.Normal, 17)
		for i := 0; i < 500; i++ {
			fs := st.Frame(g.Advance(1.0 / 90))
			if fs.GazeDensity < 0.45-1e-9 || fs.GazeDensity > 2.4+1e-9 {
				t.Fatalf("%s: gaze density %v out of bounds", a.Name, fs.GazeDensity)
			}
		}
	}
}

func TestGazeDensityMeanNearOne(t *testing.T) {
	// The density field must not bias workloads systematically.
	st := NewState(EvalApps[2])
	g := motion.NewGenerator(motion.Normal, 23)
	sum := 0.0
	n := 3000
	for i := 0; i < n; i++ {
		sum += st.Frame(g.Advance(1.0 / 90)).GazeDensity
	}
	mean := sum / float64(n)
	if mean < 0.7 || mean > 1.45 {
		t.Errorf("gaze density mean = %v, want near 1", mean)
	}
}

func TestAppsDecorrelated(t *testing.T) {
	// Different seeds should give different complexity fields.
	a := NewState(EvalApps[0])
	b := NewState(EvalApps[4])
	same := 0
	for yaw := 0.0; yaw < 6; yaw += 0.2 {
		sa := a.Frame(sampleAt(5, vec.Vec2{}, yaw))
		sb := b.Frame(sampleAt(5, vec.Vec2{}, yaw))
		if math.Abs(sa.ViewComplexity-sb.ViewComplexity) < 1e-6 {
			same++
		}
	}
	if same > 5 {
		t.Errorf("apps share complexity field: %d/30 samples equal", same)
	}
}

func TestStringFormat(t *testing.T) {
	a, _ := AppByName("GRID")
	s := a.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}
