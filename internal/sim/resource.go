package sim

// Resource models a contended hardware unit with a fixed number of
// identical servers (capacity): one mobile GPU, two UCA units, one
// video decoder, one radio link, and so on. Jobs are served FIFO; a job
// occupies one server for its service time and then invokes its
// completion callback.
//
// Resource is the mechanism behind the paper's contention analysis
// (Fig. 4-3): when composition and ATW run on the GPU Resource they
// delay queued rendering jobs, and when they run on a separate UCA
// Resource the contention disappears.
type Resource struct {
	engine   *Engine
	name     string
	capacity int
	busy     int
	// queue is a head-indexed FIFO: dequeuing advances head instead of
	// reslicing, and the slice rewinds to its start whenever it drains,
	// so the backing array is reused for the whole run.
	queue []*job
	head  int
	// free recycles job structs (and their one-time completion
	// closures), keeping the per-request hot path allocation-free
	// after warm-up.
	free []*job

	// Accounting for utilization reports.
	busyTime   Time
	lastChange Time
	served     int64
}

type job struct {
	service Time
	onStart func()
	onDone  func()
	// complete is bound once per pooled job: it releases the server,
	// returns the job to the pool, then runs onDone and re-dispatches.
	complete func()
}

// NewResource creates a resource with the given number of servers
// attached to engine. Capacity must be at least 1.
func NewResource(engine *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{engine: engine, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Request enqueues a job needing the given service time. onDone runs
// when the job completes; it may be nil.
func (r *Resource) Request(service Time, onDone func()) {
	r.RequestWithStart(service, nil, onDone)
}

// RequestWithStart enqueues a job and additionally invokes onStart at
// the moment a server is granted (used to timestamp queueing delay).
func (r *Resource) RequestWithStart(service Time, onStart, onDone func()) {
	if service < 0 {
		service = 0
	}
	j := r.newJob()
	j.service, j.onStart, j.onDone = service, onStart, onDone
	r.queue = append(r.queue, j)
	r.dispatch()
}

// newJob takes a job from the pool or builds one, binding its
// completion closure exactly once.
func (r *Resource) newJob() *job {
	if n := len(r.free); n > 0 {
		j := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return j
	}
	j := &job{}
	j.complete = func() {
		r.accountBusy()
		r.busy--
		r.served++
		// Recycle before the callback: onDone may request this
		// resource again and can safely reuse the struct, because the
		// callback itself is held locally.
		done := j.onDone
		j.onStart, j.onDone = nil, nil
		r.free = append(r.free, j)
		if done != nil {
			done()
		}
		r.dispatch()
	}
	return j
}

func (r *Resource) dispatch() {
	for r.busy < r.capacity && r.head < len(r.queue) {
		j := r.queue[r.head]
		r.queue[r.head] = nil
		r.head++
		if r.head == len(r.queue) {
			r.queue = r.queue[:0]
			r.head = 0
		}
		r.accountBusy()
		r.busy++
		if j.onStart != nil {
			j.onStart()
		}
		r.engine.Schedule(j.service, j.complete)
	}
}

func (r *Resource) accountBusy() {
	now := r.engine.Now()
	r.busyTime += Time(float64(now-r.lastChange) * float64(r.busy) / float64(r.capacity))
	r.lastChange = now
}

// InUse reports the number of currently occupied servers.
func (r *Resource) InUse() int { return r.busy }

// QueueLen reports the number of jobs waiting for a server.
func (r *Resource) QueueLen() int { return len(r.queue) - r.head }

// Served reports the number of completed jobs.
func (r *Resource) Served() int64 { return r.served }

// Utilization reports the time-averaged fraction of capacity in use
// since the resource was created.
func (r *Resource) Utilization() float64 {
	r.accountBusy()
	if r.engine.Now() == 0 {
		return 0
	}
	return float64(r.busyTime) / float64(r.engine.Now())
}
