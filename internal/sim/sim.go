// Package sim implements the discrete-event simulation engine that the
// Q-VR reproduction runs on.
//
// Every hardware unit in the modeled system — the mobile GPU, the video
// decoder, the network link, the UCA composition unit, the remote
// render cluster — is a contended Resource attached to a shared Engine.
// Frame pipelines are expressed as chains of scheduled events and
// resource requests; overlap between stages (remote rendering, network
// streaming and video decode proceeding in parallel with local
// rendering, as in Fig. 4 of the paper) emerges from the event order
// rather than being hard-coded.
//
// The engine is deliberately single-threaded: determinism matters more
// than wall-clock speed for an architecture study, and a simulated
// second costs far less than a real one.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in seconds.
type Time float64

// Ms constructs a Time from milliseconds.
func Ms(ms float64) Time { return Time(ms / 1000) }

// Us constructs a Time from microseconds.
func Us(us float64) Time { return Time(us / 1e6) }

// Milliseconds reports t in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) * 1000 }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return float64(t) }

func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

type event struct {
	at  Time
	seq int64 // tie-break so same-time events run in schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator: a virtual clock plus an ordered
// queue of pending events. The zero value is not usable; call NewEngine.
type Engine struct {
	now   Time
	queue eventHeap
	seq   int64
	steps int64
	// free recycles executed event structs: a session schedules a
	// handful of events per simulated frame, and pooling them keeps
	// the hot loop allocation-free after the first few frames.
	free []*event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Schedule runs fn after delay. A negative delay is treated as zero;
// same-time events run in the order they were scheduled.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = e.now+delay, e.seq, fn
	} else {
		ev = &event{at: e.now + delay, seq: e.seq, fn: fn}
	}
	heap.Push(&e.queue, ev)
}

// At runs fn at absolute simulated time t (or immediately if t is in
// the past).
func (e *Engine) At(t Time, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.steps++
	// Recycle before running: fn may schedule new events, and handing
	// it this struct back immediately keeps the pool at the queue's
	// high-water mark.
	fn := ev.fn
	ev.fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t stay pending.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
