package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(Ms(3), func() { got = append(got, 3) })
	e.Schedule(Ms(1), func() { got = append(got, 1) })
	e.Schedule(Ms(2), func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Ms(3) {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Ms(5), func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(Ms(1), func() {
		e.Schedule(Ms(-10), func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if e.Now() != Ms(1) {
		t.Errorf("clock moved backwards: %v", e.Now())
	}
}

func TestAtAbsolute(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(Ms(7), func() { at = e.Now() })
	e.Run()
	if at != Ms(7) {
		t.Errorf("At fired at %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Ms(float64(i)), func() { count++ })
	}
	e.RunUntil(Ms(5))
	if count != 5 {
		t.Errorf("ran %d events, want 5", count)
	}
	if e.Now() != Ms(5) {
		t.Errorf("clock = %v, want 5ms", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("after Run count = %d", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	var tick func()
	n := 0
	tick = func() {
		times = append(times, e.Now().Milliseconds())
		n++
		if n < 5 {
			e.Schedule(Ms(2), tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	for i, ms := range times {
		if want := float64(i * 2); ms != want {
			t.Fatalf("tick %d at %vms, want %v", i, ms, want)
		}
	}
}

func TestEventTimesMonotonic(t *testing.T) {
	// Property: regardless of insertion order, execution times never
	// decrease.
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []float64
		for _, d := range delays {
			d := d
			e.Schedule(Us(float64(d)), func() {
				seen = append(seen, e.Now().Seconds())
			})
		}
		e.Run()
		return sort.Float64sAreSorted(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		r.Request(Ms(10), func() { done = append(done, e.Now().Milliseconds()) })
	}
	e.Run()
	want := []float64{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if r.Served() != 3 {
		t.Errorf("served = %d", r.Served())
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "uca", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Request(Ms(10), func() { done = append(done, e.Now().Milliseconds()) })
	}
	e.Run()
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceOnStartMeasuresQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "dec", 1)
	var starts []float64
	for i := 0; i < 3; i++ {
		r.RequestWithStart(Ms(4), func() {
			starts = append(starts, e.Now().Milliseconds())
		}, nil)
	}
	e.Run()
	want := []float64{0, 4, 8}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu", 1)
	r.Request(Ms(5), nil)
	e.Schedule(Ms(10), func() {}) // extend sim to 10ms
	e.Run()
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

func TestResourceConservation(t *testing.T) {
	// Property: with capacity c and n jobs of service s, total makespan
	// is ceil(n/c)*s and all jobs complete.
	f := func(cap8, n8 uint8) bool {
		c := int(cap8%4) + 1
		n := int(n8%20) + 1
		e := NewEngine()
		r := NewResource(e, "x", c)
		completed := 0
		for i := 0; i < n; i++ {
			r.Request(Ms(2), func() { completed++ })
		}
		e.Run()
		batches := (n + c - 1) / c
		makespan := e.Now().Milliseconds()
		want := float64(2 * batches)
		return completed == n && makespan > want-1e-9 && makespan < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResourceRandomizedNoLostJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		r := NewResource(e, "x", 1+rng.Intn(3))
		n := 1 + rng.Intn(50)
		completed := 0
		for i := 0; i < n; i++ {
			delay := Us(float64(rng.Intn(5000)))
			service := Us(float64(rng.Intn(3000)))
			e.Schedule(delay, func() {
				r.Request(service, func() { completed++ })
			})
		}
		e.Run()
		if completed != n {
			t.Fatalf("trial %d: completed %d of %d", trial, completed, n)
		}
		if r.InUse() != 0 || r.QueueLen() != 0 {
			t.Fatalf("trial %d: resource not drained", trial)
		}
	}
}

func TestZeroServiceJob(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	ran := false
	r.Request(0, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("zero-service job did not complete")
	}
}

func TestCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewResource(0) did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestTimeHelpers(t *testing.T) {
	if Ms(25).Milliseconds() != 25 {
		t.Error("Ms roundtrip failed")
	}
	if Us(1500) != Ms(1.5) {
		t.Error("Us/Ms mismatch")
	}
	if Ms(11.1).String() != "11.100ms" {
		t.Errorf("String = %q", Ms(11.1).String())
	}
}
