// Package stats provides the summary statistics the experiment harness
// and tools report: moments, order statistics, and a small ASCII
// histogram for latency distributions. VR latency analysis cares about
// tails (a single 40 ms frame causes visible judder even if the mean
// is 15 ms), so percentiles are first-class here.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary. An empty input yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the p-quantile of a sorted sample using linear
// interpolation between order statistics.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the p-quantile of an unsorted sample.
func Quantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantile(sorted, p)
}

// NearestRankSorted returns the p-quantile of an already-sorted sample
// under the nearest-rank convention the latency reports use: the
// smallest element with at least ceil(p*n) of the sample at or below
// it. This is the convention that never interpolates — a reported P99
// is always a latency some frame actually exhibited. p <= 0 yields the
// minimum, p >= 1 the maximum, and an empty sample 0.
func NearestRankSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// NearestRank sorts a copy of xs and returns its nearest-rank
// p-quantile. Callers reading several quantiles from one sample should
// sort once and use NearestRankSorted.
func NearestRank(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return NearestRankSorted(sorted, p)
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram renders an ASCII histogram of xs across the given number
// of equal-width bins, one line per bin.
func Histogram(xs []float64, bins int, width int) string {
	if len(xs) == 0 || bins <= 0 {
		return "(no data)\n"
	}
	if width <= 0 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int((x - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		binLo := lo + (hi-lo)*float64(i)/float64(bins)
		binHi := lo + (hi-lo)*float64(i+1)/float64(bins)
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%10.3g-%-10.3g %6d %s\n", binLo, binHi, c, bar)
	}
	return b.String()
}

// Correlation computes the Pearson correlation coefficient between two
// equally sized samples; the LIWC analysis uses it to quantify the
// motion-to-workload coupling the paper's Fig. 8 observes.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points")
	}
	mx := Summarize(xs).Mean
	my := Summarize(ys).Mean
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
