package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P99 != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("p100 = %v", got)
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogramShape(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 2, 3}
	h := Histogram(xs, 3, 20)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("histogram lines = %d, want 3:\n%s", len(lines), h)
	}
	// The first bin (the 1s) must have the longest bar.
	if !strings.Contains(lines[0], "####") {
		t.Errorf("dominant bin has no bar:\n%s", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram(nil, 4, 10); !strings.Contains(h, "no data") {
		t.Errorf("empty histogram = %q", h)
	}
	// Constant data must not divide by zero.
	h := Histogram([]float64{5, 5, 5}, 2, 10)
	if !strings.Contains(h, "3") {
		t.Errorf("constant histogram lost counts:\n%s", h)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	flat := []float64{3, 3, 3, 3}
	r, _ = Correlation(xs, flat)
	if r != 0 {
		t.Errorf("flat correlation = %v", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if str := s.String(); !strings.Contains(str, "n=3") {
		t.Errorf("String = %q", str)
	}
}
