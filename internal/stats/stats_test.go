package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P99 != 7 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("p100 = %v", got)
	}
}

func TestNearestRank(t *testing.T) {
	// The cases the duplicated pre-hoist helpers got wrong or nearly
	// wrong: empty, single-element, p=1.0, and small odd samples where
	// floor-vs-ceil rank selection actually differs.
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single-low-p", []float64{7}, 0.001, 7},
		{"single-p1", []float64{7}, 1.0, 7},
		{"median-of-3", []float64{30, 10, 20}, 0.5, 20},
		{"p1-is-max", []float64{3, 1, 2}, 1.0, 3},
		{"p0-is-min", []float64{3, 1, 2}, 0, 1},
		{"negative-p-is-min", []float64{3, 1, 2}, -0.5, 1},
		{"over-one-is-max", []float64{3, 1, 2}, 1.5, 3},
		{"p99-of-100", seq(1, 100), 0.99, 99},
		{"p50-of-100", seq(1, 100), 0.50, 50},
		{"p95-of-10", seq(1, 10), 0.95, 10},
	}
	for _, c := range cases {
		if got := NearestRank(c.xs, c.p); got != c.want {
			t.Errorf("%s: NearestRank(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

func seq(lo, hi int) []float64 {
	xs := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		xs = append(xs, float64(v))
	}
	return xs
}

func TestNearestRankLeavesInputUnsorted(t *testing.T) {
	xs := []float64{3, 1, 2}
	NearestRank(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("NearestRank mutated its input: %v", xs)
	}
}

func TestNearestRankSortedMatchesUnsorted(t *testing.T) {
	sorted := seq(1, 17)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a, b := NearestRankSorted(sorted, p), NearestRank(sorted, p); a != b {
			t.Errorf("p=%v: sorted %v != unsorted %v", p, a, b)
		}
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogramShape(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 2, 3}
	h := Histogram(xs, 3, 20)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("histogram lines = %d, want 3:\n%s", len(lines), h)
	}
	// The first bin (the 1s) must have the longest bar.
	if !strings.Contains(lines[0], "####") {
		t.Errorf("dominant bin has no bar:\n%s", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram(nil, 4, 10); !strings.Contains(h, "no data") {
		t.Errorf("empty histogram = %q", h)
	}
	// Constant data must not divide by zero.
	h := Histogram([]float64{5, 5, 5}, 2, 10)
	if !strings.Contains(h, "3") {
		t.Errorf("constant histogram lost counts:\n%s", h)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	flat := []float64{3, 3, 3, 3}
	r, _ = Correlation(xs, flat)
	if r != 0 {
		t.Errorf("flat correlation = %v", r)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if str := s.String(); !strings.Contains(str, "n=3") {
		t.Errorf("String = %q", str)
	}
}
