// Package surrogate is the calibrated analytic session model behind
// the fleet's mixed-fidelity fast path: a per-class exemplar table
// built from a handful of exact discrete-event runs, from which any
// session's summary metrics — motion-to-photon percentiles, FPS,
// bytes, energy — are predicted in microseconds instead of the full
// simulation.
//
// The model follows the refute-and-refine discipline end to end.
// Sessions are grouped into calibration classes: two sessions belong
// to the same class when their pipeline.Config differs only by Seed,
// so everything the admission layer decided — shared-cluster speedup,
// queue delay, scaled cell bandwidth — is part of the class key and
// the surrogate sees exactly the contention the exact simulator
// would. Calibrate runs the exact DES on a few exemplars per class;
// RunSession then predicts a session by picking an exemplar from the
// session's own seed and resampling the exemplar's motion-to-photon
// distribution by inverse transform, so a predicted population has a
// real latency spread rather than K identical spikes. Every
// prediction is a pure function of (config, exemplar table), and the
// exemplar table is a pure function of the calibration configs, so
// the fast path inherits the repository's worker-count determinism
// contract for free.
//
// The model never certifies itself: fleet's fidelity harness routes a
// stratified sample of every mixed run through the exact DES, and
// obs.RefuteSurrogate fails the run when the prediction drifts past
// the declared tolerance.
package surrogate

import (
	"sort"

	"qvr/internal/framesink"
	"qvr/internal/pipeline"
)

// Model is a calibrated exemplar table, keyed by calibration class.
// It implements fleet.SessionRunner. Calibrate must complete before
// RunSession is called from worker goroutines; after calibration the
// table is read-only and safe for concurrent prediction.
type Model struct {
	classes map[pipeline.Config][]framesink.Summary
}

// New returns an empty, uncalibrated model.
func New() *Model {
	return &Model{classes: map[pipeline.Config][]framesink.Summary{}}
}

// ClassOf maps a session config to its calibration class key: the
// config with the Seed zeroed. Sessions in one class share app,
// device, network, design and every admission adjustment — only their
// random traces differ, which is precisely the axis the exemplar
// resampling models.
func (m *Model) ClassOf(cfg pipeline.Config) pipeline.Config {
	cfg.Seed = 0
	return cfg
}

// Classes reports how many calibration classes the table holds.
func (m *Model) Classes() int { return len(m.classes) }

// Calibrate runs the exact discrete-event simulation on every given
// config and files the resulting summary as an exemplar of its class.
// The caller chooses the exemplars (the fleet takes the first K
// members of each class in spec order), so the table is a pure
// function of the calibration list.
func (m *Model) Calibrate(cfgs []pipeline.Config) {
	for _, cfg := range cfgs {
		var sink framesink.StatsSink
		sink.Reset(nil)
		pipeline.NewSession(cfg).RunSink(&sink)
		key := m.ClassOf(cfg)
		m.classes[key] = append(m.classes[key], sink.Summary())
	}
}

// RunSession predicts one session analytically. The session's seed
// deterministically picks one of the class's exemplars, then the
// exemplar's motion-to-photon distribution is resampled by inverse
// transform — one draw per measured frame — into buf's tail, exactly
// the worker-buffer contract framesink.StatsSink uses, so a fleet
// worker can serve exact and surrogate sessions from one allocation.
// The returned summary aliases its sorted sample region of the grown
// buffer.
//
// A config whose class was never calibrated falls back to the exact
// simulation: an uncalibrated class must not fabricate numbers.
func (m *Model) RunSession(cfg pipeline.Config, buf []float64) (framesink.Summary, []float64) {
	exs := m.classes[m.ClassOf(cfg)]
	if len(exs) == 0 {
		var sink framesink.StatsSink
		sink.Reset(buf)
		pipeline.NewSession(cfg).RunSink(&sink)
		// The contract returns buf extended, not the session's own
		// region (sink.Buffer()): lean shards treat the return as the
		// accumulated sample buffer.
		return sink.Summary(), append(buf, sink.Buffer()...)
	}
	rng := sm64(cfg.Seed)
	ex := exs[int(rng.next()%uint64(len(exs)))]
	frames := cfg.MeasuredFrames()
	start := len(buf)
	var sum float64
	if n := len(ex.MTPSorted); n > 0 {
		for f := 0; f < frames; f++ {
			idx := int(rng.float64() * float64(n))
			if idx >= n {
				idx = n - 1
			}
			v := ex.MTPSorted[idx]
			sum += v
			buf = append(buf, v)
		}
	}
	region := buf[start:len(buf):len(buf)]
	sort.Float64s(region)
	avg := 0.0
	if len(region) > 0 {
		avg = sum / float64(len(region))
	}
	return framesink.Summary{
		Frames:                 frames,
		AvgMTPSeconds:          avg,
		FPS:                    ex.FPS,
		AvgBytesSent:           ex.AvgBytesSent,
		AvgE1:                  ex.AvgE1,
		AvgResolutionReduction: ex.AvgResolutionReduction,
		AvgEnergyJoules:        ex.AvgEnergyJoules,
		MTPSorted:              region,
	}, buf
}

// sm64 is a splitmix64 stream: the standard 64-bit mixer, seeded from
// the session's own seed. A local generator (not math/rand) keeps the
// prediction a pure allocation-free function of the config and keeps
// the fast path clear of any global random state.
type sm64 uint64

func (s *sm64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (s *sm64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
