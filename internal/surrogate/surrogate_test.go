package surrogate_test

import (
	"reflect"
	"testing"

	"qvr/internal/fleet"
	"qvr/internal/framesink"
	"qvr/internal/pipeline"
	"qvr/internal/surrogate"
)

// testConfigs builds a handful of heterogeneous session configs the
// same way the fleet does (short sessions keep race-enabled runs
// fast).
func testConfigs(t *testing.T, n int) []pipeline.Config {
	t.Helper()
	mix, ok := fleet.MixByName("mixed")
	if !ok {
		t.Fatal("mixed mix missing")
	}
	specs, err := mix.Specs(n, pipeline.QVR, 12, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]pipeline.Config, n)
	for i, sp := range specs {
		cfgs[i] = sp.Config
	}
	return cfgs
}

// exactSummary runs the full discrete-event simulation on one config.
func exactSummary(cfg pipeline.Config) framesink.Summary {
	var sink framesink.StatsSink
	sink.Reset(nil)
	pipeline.NewSession(cfg).RunSink(&sink)
	return sink.Summary()
}

// TestClassOfZeroesOnlySeed: two sessions that differ only by seed
// share a calibration class; the class key itself carries no seed.
func TestClassOfZeroesOnlySeed(t *testing.T) {
	cfgs := testConfigs(t, 2)
	m := surrogate.New()
	a := cfgs[0]
	b := a
	b.Seed = a.Seed + 99
	if m.ClassOf(a) != m.ClassOf(b) {
		t.Error("same config with different seeds landed in different classes")
	}
	if m.ClassOf(a).Seed != 0 {
		t.Errorf("class key kept seed %d, want 0", m.ClassOf(a).Seed)
	}
}

// TestUncalibratedFallsBackToExact: a class the model never saw must
// not fabricate numbers — RunSession on an empty table is the exact
// simulation, bit for bit.
func TestUncalibratedFallsBackToExact(t *testing.T) {
	cfg := testConfigs(t, 1)[0]
	m := surrogate.New()
	got, buf := m.RunSession(cfg, nil)
	want := exactSummary(cfg)
	if got.AvgMTPSeconds != want.AvgMTPSeconds || got.FPS != want.FPS ||
		got.AvgBytesSent != want.AvgBytesSent || got.Frames != want.Frames {
		t.Errorf("fallback summary %+v != exact %+v", got, want)
	}
	if !reflect.DeepEqual(got.MTPSorted, want.MTPSorted) {
		t.Error("fallback sample distribution differs from the exact run")
	}
	if len(buf) != want.Frames {
		t.Errorf("returned buffer holds %d samples, want %d", len(buf), want.Frames)
	}
}

// TestRunSessionExtendsBuffer pins the worker-buffer contract both
// paths share with framesink.StatsSink: the returned slice is the
// caller's buffer extended in place — never just the session's own
// region — so a lean shard can treat it as the accumulated sample
// buffer. (Truncating it here is exactly the bug that collapses a
// shard's merged percentiles to its last session.)
func TestRunSessionExtendsBuffer(t *testing.T) {
	cfgs := testConfigs(t, 2)
	prefix := []float64{0.001, 0.002, 0.003}

	for _, tc := range []struct {
		name      string
		calibrate bool
	}{{"fallback", false}, {"calibrated", true}} {
		m := surrogate.New()
		cfg := cfgs[0]
		if tc.calibrate {
			cal := cfg
			cal.Seed = cfg.Seed + 1
			m.Calibrate([]pipeline.Config{cal})
		}
		buf := append([]float64(nil), prefix...)
		sum, buf := m.RunSession(cfg, buf)
		if len(buf) != len(prefix)+sum.Frames {
			t.Errorf("%s: buffer grew to %d samples, want %d prior + %d session",
				tc.name, len(buf), len(prefix), sum.Frames)
		}
		if !reflect.DeepEqual(buf[:len(prefix)], prefix) {
			t.Errorf("%s: prior buffer contents clobbered: %v", tc.name, buf[:len(prefix)])
		}
		if !reflect.DeepEqual(sum.MTPSorted, buf[len(prefix):]) {
			t.Errorf("%s: summary region does not alias the buffer tail", tc.name)
		}
	}
}

// TestPredictionIsPure: the prediction is a pure function of (config,
// calibration list) — two independently calibrated models agree
// exactly, and repeated predictions never drift. This is what lets
// the fast path inherit the worker-count determinism contract.
func TestPredictionIsPure(t *testing.T) {
	cfg := testConfigs(t, 1)[0]
	cal := cfg
	cal.Seed = cfg.Seed + 7

	predict := func() framesink.Summary {
		m := surrogate.New()
		m.Calibrate([]pipeline.Config{cal})
		sum, _ := m.RunSession(cfg, nil)
		return sum
	}
	a, b := predict(), predict()
	if !reflect.DeepEqual(a, b) {
		t.Error("two identically calibrated models disagree")
	}

	m := surrogate.New()
	m.Calibrate([]pipeline.Config{cal})
	s1, buf := m.RunSession(cfg, nil)
	s2, _ := m.RunSession(cfg, buf[:len(buf):len(buf)])
	if s1.AvgMTPSeconds != s2.AvgMTPSeconds || !reflect.DeepEqual(s1.MTPSorted, s2.MTPSorted) {
		t.Error("repeated prediction of the same session drifted")
	}
}

// TestPredictionResamplesExemplar: a calibrated prediction copies the
// exemplar's scalar metrics and resamples its motion-to-photon
// distribution — every drawn sample is one of the exemplar's own, and
// different session seeds draw different traces.
func TestPredictionResamplesExemplar(t *testing.T) {
	cfg := testConfigs(t, 1)[0]
	cal := cfg
	cal.Seed = cfg.Seed + 7
	ex := exactSummary(cal)

	m := surrogate.New()
	m.Calibrate([]pipeline.Config{cal})
	if m.Classes() != 1 {
		t.Fatalf("calibration built %d classes, want 1", m.Classes())
	}
	sum, _ := m.RunSession(cfg, nil)
	if sum.FPS != ex.FPS || sum.AvgBytesSent != ex.AvgBytesSent {
		t.Errorf("prediction fps/bytes %.3f/%.0f != exemplar %.3f/%.0f",
			sum.FPS, sum.AvgBytesSent, ex.FPS, ex.AvgBytesSent)
	}
	pool := map[float64]bool{}
	for _, v := range ex.MTPSorted {
		pool[v] = true
	}
	for _, v := range sum.MTPSorted {
		if !pool[v] {
			t.Fatalf("resampled value %v is not one of the exemplar's samples", v)
		}
	}

	other := cfg
	other.Seed = cfg.Seed + 1000
	osum, _ := m.RunSession(other, nil)
	if reflect.DeepEqual(sum.MTPSorted, osum.MTPSorted) {
		t.Error("different seeds drew identical traces; resampling is not seeded")
	}
}
