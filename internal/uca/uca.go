// Package uca models the Unified Composition and ATW unit — the
// dedicated SoC block the paper adds to take frame composition and
// time warp off the mobile GPU (Section 4.2).
//
// The functional algorithm (reordered distortion -> remap -> single
// trilinear/bilinear filter pass) lives in package atw, where it is
// verified against the sequential baseline on real images. This
// package models the *hardware* behaviour the evaluation depends on:
//
//   - throughput: each UCA processes one 32x32-pixel tile in 532
//     cycles (the paper's measured figure on its cycle-level
//     simulator); boundary tiles take the full trilinear path while
//     interior tiles take a cheaper bilinear path;
//   - parallelism: the default configuration instantiates 2 units at
//     500 MHz, which the paper states is sufficient for realtime VR;
//   - asynchrony: UCA runs as its own accelerator, so its latency
//     overlaps GPU rendering instead of contending with it (the
//     Fig. 4-3 problem the unit exists to remove).
package uca

// TilePixels is the hardware tile granularity (32x32).
const TilePixels = 32

// Config describes a UCA hardware instance.
type Config struct {
	// Units is the number of UCA blocks on the SoC (paper default: 2).
	Units int
	// FrequencyMHz is the block clock (paper default: 500 MHz).
	FrequencyMHz float64
	// CyclesTrilinear is the cost of a boundary tile needing the full
	// unified trilinear filter (paper: 532 cycles per 32x32 block).
	CyclesTrilinear int
	// CyclesBilinear is the cost of an interior tile that only needs
	// bilinear sampling of a single layer.
	CyclesBilinear int
}

// Default returns the paper's UCA configuration.
func Default() Config {
	return Config{
		Units:           2,
		FrequencyMHz:    500,
		CyclesTrilinear: 532,
		CyclesBilinear:  398,
	}
}

// Tiles returns the number of hardware tiles covering a w x h frame
// for both eyes.
func Tiles(w, h int) int {
	tx := (w + TilePixels - 1) / TilePixels
	ty := (h + TilePixels - 1) / TilePixels
	return 2 * tx * ty
}

// FrameSeconds returns the UCA latency to compose-and-warp one stereo
// frame of the given per-eye resolution, where boundaryFrac of tiles
// straddle a layer boundary (see atw.BoundaryTileFraction).
func (c Config) FrameSeconds(w, h int, boundaryFrac float64) float64 {
	if boundaryFrac < 0 {
		boundaryFrac = 0
	}
	if boundaryFrac > 1 {
		boundaryFrac = 1
	}
	tiles := float64(Tiles(w, h))
	cycles := tiles * (boundaryFrac*float64(c.CyclesTrilinear) + (1-boundaryFrac)*float64(c.CyclesBilinear))
	units := c.Units
	if units < 1 {
		units = 1
	}
	return cycles / (float64(units) * c.FrequencyMHz * 1e6)
}

// GPUCompositionSeconds models the *baseline* software path the UCA
// replaces: composition plus ATW running as shader work on the mobile
// GPU. The cost is charged to the GPU resource in the pipeline model,
// where it contends with rendering (Fig. 4-3). Costs are expressed as
// shader ops per pixel: composition reads three layers and blends
// (~45 ops), ATW does distortion math and a bilinear fetch (~30 ops).
func GPUCompositionSeconds(w, h int, freqMHz float64, withComposition bool) float64 {
	pixels := float64(2 * w * h)
	ops := 30.0 // ATW alone
	if withComposition {
		ops += 45
	}
	// Ops execute across the baseline GPU's 256 ALU lanes.
	const lanes = 256
	return pixels * ops / (lanes * freqMHz * 1e6)
}

// RuntimePowerWatts is the McPAT-derived power of one active UCA
// (Section 4.3: 94 mW at 500 MHz, 45 nm).
const RuntimePowerWatts = 0.094

// AreaMM2 is the McPAT-derived area of one UCA (Section 4.3: 1.6 mm2).
const AreaMM2 = 1.6
