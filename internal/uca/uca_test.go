package uca

import (
	"math"
	"testing"
)

func TestTilesStereo(t *testing.T) {
	// 1920x2160 per eye: 60 x 68 tiles x 2 eyes.
	if got := Tiles(1920, 2160); got != 2*60*68 {
		t.Errorf("Tiles(1920,2160) = %d, want %d", got, 2*60*68)
	}
	// Non-multiples round up.
	if got := Tiles(33, 33); got != 2*2*2 {
		t.Errorf("Tiles(33,33) = %d, want 8", got)
	}
}

func TestPaperTileLatency(t *testing.T) {
	// One boundary tile on one unit at 500 MHz must cost exactly
	// 532 cycles = 1.064 us.
	c := Default()
	c.Units = 1
	got := c.FrameSeconds(TilePixels, TilePixels, 1) / 2 // Tiles() counts both eyes
	want := 532.0 / 500e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("tile latency = %v, want %v", got, want)
	}
}

func TestFullFrameUnderBudget(t *testing.T) {
	// The paper: 2 UCAs at 500 MHz are "sufficient for realtime VR".
	// A full 1920x2160 stereo frame must fit well inside the 11 ms
	// frame budget.
	c := Default()
	sec := c.FrameSeconds(1920, 2160, 0.25)
	if sec > 0.005 {
		t.Errorf("stereo frame UCA latency = %.2fms, want < 5ms", sec*1000)
	}
	if sec <= 0 {
		t.Error("non-positive UCA latency")
	}
}

func TestBoundaryFractionIncreasesCost(t *testing.T) {
	c := Default()
	interior := c.FrameSeconds(1920, 2160, 0)
	mixed := c.FrameSeconds(1920, 2160, 0.5)
	full := c.FrameSeconds(1920, 2160, 1)
	if !(interior < mixed && mixed < full) {
		t.Errorf("cost not increasing with boundary fraction: %v %v %v", interior, mixed, full)
	}
	// Linear interpolation between the two tile costs.
	want := (interior + full) / 2
	if math.Abs(mixed-want) > 1e-12 {
		t.Errorf("mixed cost %v, want midpoint %v", mixed, want)
	}
}

func TestBoundaryFractionClamped(t *testing.T) {
	c := Default()
	if c.FrameSeconds(640, 640, -1) != c.FrameSeconds(640, 640, 0) {
		t.Error("negative fraction not clamped")
	}
	if c.FrameSeconds(640, 640, 2) != c.FrameSeconds(640, 640, 1) {
		t.Error("fraction > 1 not clamped")
	}
}

func TestMoreUnitsFaster(t *testing.T) {
	one := Default()
	one.Units = 1
	two := Default()
	t1 := one.FrameSeconds(1920, 2160, 0.3)
	t2 := two.FrameSeconds(1920, 2160, 0.3)
	if math.Abs(t1/t2-2) > 1e-9 {
		t.Errorf("2 units speedup = %v, want 2", t1/t2)
	}
	zero := Default()
	zero.Units = 0
	if zero.FrameSeconds(64, 64, 0) != one.FrameSeconds(64, 64, 0) {
		t.Error("zero units not clamped to 1")
	}
}

func TestGPUCompositionSlowerWithComposition(t *testing.T) {
	atwOnly := GPUCompositionSeconds(1920, 2160, 500, false)
	both := GPUCompositionSeconds(1920, 2160, 500, true)
	if both <= atwOnly {
		t.Errorf("composition did not add cost: %v vs %v", both, atwOnly)
	}
	// Baseline GPU ATW is small but material: ~1-4 ms at full res.
	if atwOnly < 0.0005 || atwOnly > 0.01 {
		t.Errorf("GPU ATW = %.2fms, want ~1-4ms", atwOnly*1000)
	}
}

func TestGPUCompositionFrequencyScaling(t *testing.T) {
	fast := GPUCompositionSeconds(1920, 2160, 500, true)
	slow := GPUCompositionSeconds(1920, 2160, 250, true)
	if math.Abs(slow/fast-2) > 1e-9 {
		t.Errorf("frequency scaling = %v, want 2", slow/fast)
	}
}

func TestUCABeatsGPUPath(t *testing.T) {
	// The dedicated unit must outperform the GPU software path it
	// replaces (otherwise the architecture makes no sense).
	c := Default()
	ucaT := c.FrameSeconds(1920, 2160, 0.3)
	gpuT := GPUCompositionSeconds(1920, 2160, 500, true)
	if ucaT >= gpuT {
		t.Errorf("UCA (%.2fms) not faster than GPU path (%.2fms)", ucaT*1000, gpuT*1000)
	}
}

func TestOverheadConstants(t *testing.T) {
	if RuntimePowerWatts != 0.094 {
		t.Errorf("UCA power = %v, want 94mW", RuntimePowerWatts)
	}
	if AreaMM2 != 1.6 {
		t.Errorf("UCA area = %v, want 1.6mm2", AreaMM2)
	}
}
