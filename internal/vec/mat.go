package vec

import "math"

// Mat4 is a 4x4 row-major matrix used for model/view/projection
// transforms in the rasterizer and for ATW coordinate remapping.
type Mat4 [16]float64

// Identity returns the 4x4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m * o.
func (m Mat4) Mul(o Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * o[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// TransformPoint applies m to the point v (w = 1) and performs the
// perspective divide. The returned w is the clip-space w before the
// divide; callers use it for near-plane rejection.
func (m Mat4) TransformPoint(v Vec3) (Vec3, float64) {
	x := m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]
	y := m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]
	z := m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]
	w := m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}, w
	}
	return Vec3{x, y, z}, w
}

// TransformDir applies only the rotational part of m to v (w = 0).
func (m Mat4) TransformDir(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z,
	}
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = t.X, t.Y, t.Z
	return m
}

// ScaleUniform returns a uniform scaling matrix.
func ScaleUniform(s float64) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s, s, s
	return m
}

// Perspective returns a right-handed perspective projection matrix with
// the given vertical field of view (radians), aspect ratio, and near and
// far clip distances. Depth maps to [0,1].
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	nf := 1 / (near - far)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, far * nf, far * near * nf,
		0, 0, -1, 0,
	}
}

// LookAt returns a right-handed view matrix for an eye at position eye
// looking at center with the given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}
