package vec

import "math"

// Quat is a unit quaternion (w + xi + yj + zk) representing a 3D
// rotation. Head orientation in the motion model is a Quat; the ATW
// reprojection stage converts pose deltas to rotation matrices.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// FromAxisAngle builds a quaternion rotating angle radians about axis.
func FromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalize()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// FromEuler builds a quaternion from yaw (about Y), pitch (about X) and
// roll (about Z) in radians, applied in yaw-pitch-roll order. This is
// the convention the 6-DoF head tracker uses.
func FromEuler(yaw, pitch, roll float64) Quat {
	qy := FromAxisAngle(Vec3{Y: 1}, yaw)
	qp := FromAxisAngle(Vec3{X: 1}, pitch)
	qr := FromAxisAngle(Vec3{Z: 1}, roll)
	return qy.Mul(qp).Mul(qr)
}

// Mul returns the Hamilton product q * o (apply o first, then q).
func (q Quat) Mul(o Quat) Quat {
	return Quat{
		W: q.W*o.W - q.X*o.X - q.Y*o.Y - q.Z*o.Z,
		X: q.W*o.X + q.X*o.W + q.Y*o.Z - q.Z*o.Y,
		Y: q.W*o.Y - q.X*o.Z + q.Y*o.W + q.Z*o.X,
		Z: q.W*o.Z + q.X*o.Y - q.Y*o.X + q.Z*o.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Normalize rescales q to unit length; the zero quaternion becomes the
// identity so downstream rotation math never sees NaNs.
func (q Quat) Normalize() Quat {
	l := math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
	if l == 0 {
		return IdentityQuat()
	}
	inv := 1 / l
	return Quat{q.W * inv, q.X * inv, q.Y * inv, q.Z * inv}
}

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q^-1, expanded to avoid allocations.
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// Mat4 converts the rotation into a 4x4 matrix.
func (q Quat) Mat4() Mat4 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat4{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y), 0,
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x), 0,
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y), 0,
		0, 0, 0, 1,
	}
}

// Slerp spherically interpolates between q and o by t in [0,1].
func (q Quat) Slerp(o Quat, t float64) Quat {
	d := q.W*o.W + q.X*o.X + q.Y*o.Y + q.Z*o.Z
	if d < 0 {
		o = Quat{-o.W, -o.X, -o.Y, -o.Z}
		d = -d
	}
	if d > 0.9995 {
		// Nearly parallel: fall back to normalized lerp.
		return Quat{
			q.W + (o.W-q.W)*t,
			q.X + (o.X-q.X)*t,
			q.Y + (o.Y-q.Y)*t,
			q.Z + (o.Z-q.Z)*t,
		}.Normalize()
	}
	theta := math.Acos(clamp(d, -1, 1))
	sTheta := math.Sin(theta)
	a := math.Sin((1-t)*theta) / sTheta
	b := math.Sin(t*theta) / sTheta
	return Quat{
		a*q.W + b*o.W,
		a*q.X + b*o.X,
		a*q.Y + b*o.Y,
		a*q.Z + b*o.Z,
	}.Normalize()
}

// AngleTo returns the rotation angle in radians needed to go from q to o.
// This is what the LIWC motion codec quantizes per degree of freedom.
func (q Quat) AngleTo(o Quat) float64 {
	d := q.Conj().Mul(o).Normalize()
	return 2 * math.Acos(clamp(math.Abs(d.W), -1, 1))
}

// Forward returns the view direction (-Z in HMD convention) rotated by q.
func (q Quat) Forward() Vec3 { return q.Rotate(Vec3{Z: -1}) }
