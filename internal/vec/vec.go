// Package vec provides the small fixed-size linear algebra toolkit used
// throughout the Q-VR reproduction: 2- and 3-component vectors, 4x4
// matrices, and unit quaternions for head-pose arithmetic.
//
// The package is deliberately minimal: it implements exactly the
// operations the motion model, the rasterizer, and the ATW reprojection
// stage need, with value semantics throughout so that poses and vertices
// can be copied freely between simulation goroutines without aliasing.
package vec

import "math"

// Vec2 is a 2-component vector, used for screen-space positions,
// fovea centers, and texture coordinates.
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Len() }

// Lerp linearly interpolates between v and o by t in [0,1].
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// Vec3 is a 3-component vector, used for world-space positions,
// view directions, and angular velocities.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v x o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Len() }

// Normalize returns v scaled to unit length. The zero vector is
// returned unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates between v and o by t in [0,1].
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return Vec3{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t, v.Z + (o.Z-v.Z)*t}
}

// AngleTo returns the angle between v and o in radians.
func (v Vec3) AngleTo(o Vec3) float64 {
	d := v.Normalize().Dot(o.Normalize())
	return math.Acos(clamp(d, -1, 1))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
