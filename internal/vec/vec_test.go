package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func approxVec3(a, b Vec3) bool {
	return approx(a.X, b.X) && approx(a.Y, b.Y) && approx(a.Z, b.Z)
}

func TestVec2Basics(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -5 {
		t.Errorf("Dot = %v", got)
	}
	if got := b.Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := (Vec2{0, 0}).Dist(Vec2{3, 4}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec2{2, -1}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); !approxVec3(got, Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.AngleTo(b); !approx(got, math.Pi/2) {
		t.Errorf("AngleTo = %v", got)
	}
	if got := (Vec3{2, 0, 0}).Normalize(); !approxVec3(got, a) {
		t.Errorf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize zero = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{wrap(ax), wrap(ay), wrap(az)}
		b := Vec3{wrap(bx), wrap(by), wrap(bz)}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6 && math.Abs(c.Dot(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// wrap maps arbitrary float64s (including inf/NaN from quick) into a
// well-conditioned range for geometric property tests.
func wrap(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 100)
}

func TestMat4Identity(t *testing.T) {
	p := Vec3{1, 2, 3}
	got, w := Identity().TransformPoint(p)
	if !approxVec3(got, p) || w != 1 {
		t.Errorf("identity transform = %v, w=%v", got, w)
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	a := Translate(Vec3{1, 2, 3})
	b := ScaleUniform(2)
	c := FromAxisAngle(Vec3{Y: 1}, 0.3).Mat4()
	l := a.Mul(b).Mul(c)
	r := a.Mul(b.Mul(c))
	for i := range l {
		if !approx(l[i], r[i]) {
			t.Fatalf("associativity broken at %d: %v vs %v", i, l[i], r[i])
		}
	}
}

func TestTranslateThenScale(t *testing.T) {
	m := Translate(Vec3{1, 0, 0}).Mul(ScaleUniform(2))
	got, _ := m.TransformPoint(Vec3{1, 1, 1})
	if !approxVec3(got, Vec3{3, 2, 2}) {
		t.Errorf("TransformPoint = %v", got)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	m := Perspective(math.Pi/2, 1, 0.1, 100)
	near, _ := m.TransformPoint(Vec3{0, 0, -1})
	far, _ := m.TransformPoint(Vec3{0, 0, -50})
	if near.Z >= far.Z {
		t.Errorf("depth ordering broken: near %v far %v", near.Z, far.Z)
	}
}

func TestLookAtEyeMapsToOrigin(t *testing.T) {
	eye := Vec3{3, 4, 5}
	m := LookAt(eye, Vec3{}, Vec3{Y: 1})
	got, _ := m.TransformPoint(eye)
	if got.Len() > 1e-6 {
		t.Errorf("eye maps to %v, want origin", got)
	}
}

func TestQuatIdentityRotate(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := IdentityQuat().Rotate(v); !approxVec3(got, v) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	q := FromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	got := q.Rotate(Vec3{1, 0, 0})
	if !approxVec3(got, Vec3{0, 1, 0}) {
		t.Errorf("90deg Z rotate = %v", got)
	}
}

func TestQuatMat4AgreesWithRotate(t *testing.T) {
	f := func(ax, ay, az, angle float64) bool {
		axis := Vec3{wrap(ax), wrap(ay), wrap(az)}
		if axis.Len() < 1e-9 {
			axis = Vec3{Y: 1}
		}
		q := FromAxisAngle(axis, wrap(angle))
		v := Vec3{1, -2, 0.5}
		a := q.Rotate(v)
		b := q.Mat4().TransformDir(v)
		return approxVec3(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatRotatePreservesLength(t *testing.T) {
	f := func(yaw, pitch, roll, vx, vy, vz float64) bool {
		q := FromEuler(wrap(yaw), wrap(pitch), wrap(roll))
		v := Vec3{wrap(vx), wrap(vy), wrap(vz)}
		return math.Abs(q.Rotate(v).Len()-v.Len()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := FromEuler(0.3, -0.2, 0.1)
	v := Vec3{1, 2, 3}
	back := q.Conj().Rotate(q.Rotate(v))
	if !approxVec3(back, v) {
		t.Errorf("conj inverse: %v", back)
	}
}

func TestQuatAngleTo(t *testing.T) {
	a := IdentityQuat()
	b := FromAxisAngle(Vec3{Y: 1}, 0.5)
	if got := a.AngleTo(b); !approx(got, 0.5) {
		t.Errorf("AngleTo = %v, want 0.5", got)
	}
	if got := a.AngleTo(a); got > eps {
		t.Errorf("AngleTo self = %v", got)
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	a := FromAxisAngle(Vec3{Y: 1}, 0.2)
	b := FromAxisAngle(Vec3{Y: 1}, 1.4)
	if got := a.Slerp(b, 0); got.AngleTo(a) > 1e-6 {
		t.Errorf("Slerp(0) = %v", got)
	}
	if got := a.Slerp(b, 1); got.AngleTo(b) > 1e-6 {
		t.Errorf("Slerp(1) = %v", got)
	}
	mid := a.Slerp(b, 0.5)
	want := FromAxisAngle(Vec3{Y: 1}, 0.8)
	if mid.AngleTo(want) > 1e-6 {
		t.Errorf("Slerp(0.5) angle = %v", mid.AngleTo(want))
	}
}

func TestQuatSlerpNearlyParallel(t *testing.T) {
	a := FromAxisAngle(Vec3{Y: 1}, 0.1)
	b := FromAxisAngle(Vec3{Y: 1}, 0.100001)
	got := a.Slerp(b, 0.5)
	if got.AngleTo(a) > 1e-3 {
		t.Errorf("nearly-parallel slerp diverged: %v", got.AngleTo(a))
	}
}

func TestQuatNormalizeZero(t *testing.T) {
	if got := (Quat{}).Normalize(); got != IdentityQuat() {
		t.Errorf("Normalize zero = %v", got)
	}
}

func TestForward(t *testing.T) {
	// Yaw of +90 degrees should turn -Z toward -X.
	q := FromEuler(math.Pi/2, 0, 0)
	got := q.Forward()
	if !approxVec3(got, Vec3{-1, 0, 0}) {
		t.Errorf("Forward = %v", got)
	}
}
