#!/bin/sh
# bench_gate.sh — the allocs/op regression gate over a `go test -json
# -benchmem` event stream. The baseline file names every gated
# benchmark, one per line:
#
#   # comment
#   BenchmarkFleetStreaming 2203
#   BenchmarkCapacityProbe  4096
#
# Each named benchmark must appear in the stream with an allocs/op
# figure at most 20% over its baseline. A missing or malformed baseline
# file fails loudly — a gate that silently skips is how allocation
# creep ships.
#
# usage: bench_gate.sh BASELINE_FILE BENCH_JSON
set -eu

if [ "$#" -ne 2 ]; then
    echo "usage: $0 BASELINE_FILE BENCH_JSON" >&2
    exit 2
fi
baseline_file=$1
bench_json=$2

if [ ! -f "$baseline_file" ]; then
    echo "bench gate FAIL: baseline file $baseline_file is missing" >&2
    echo "  (seed it with one '<BenchmarkName> <allocs/op>' line per gated benchmark)" >&2
    exit 1
fi
if [ ! -f "$bench_json" ]; then
    echo "bench gate FAIL: benchmark stream $bench_json is missing" >&2
    exit 1
fi

gated=0
while read -r name base rest; do
    case "$name" in ''|'#'*) continue ;; esac
    case "$name" in
    Benchmark*) ;;
    *)
        echo "bench gate FAIL: malformed baseline line '$name ${base:-}' in $baseline_file" >&2
        echo "  (expected '<BenchmarkName> <allocs/op>')" >&2
        exit 1
        ;;
    esac
    if [ -z "${base:-}" ] || [ -n "$rest" ] || ! [ "$base" -ge 0 ] 2>/dev/null; then
        echo "bench gate FAIL: malformed baseline line '$name ${base:-} ${rest:-}' in $baseline_file" >&2
        echo "  (expected '<BenchmarkName> <allocs/op>')" >&2
        exit 1
    fi
    gated=$((gated + 1))
    # The stream quotes benchmark output inside JSON "Output" events;
    # match the result line for this exact benchmark (allowing the
    # -N GOMAXPROCS suffix) and scrape its allocs/op.
    allocs=$(grep "$name" "$bench_json" | grep 'allocs/op' |
        sed -E 's|.*[^0-9]([0-9]+) allocs/op.*|\1|' | head -1)
    if [ -z "$allocs" ]; then
        echo "bench gate FAIL: no allocs/op for $name in $bench_json" >&2
        echo "  (benchmark removed or renamed? update $baseline_file)" >&2
        exit 1
    fi
    limit=$((base + base / 5))
    if [ "$allocs" -gt "$limit" ]; then
        echo "bench gate FAIL: $name $allocs allocs/op > $limit (baseline $base +20%)" >&2
        exit 1
    fi
    echo "bench gate OK: $name $allocs allocs/op <= $limit (baseline $base +20%)"
done < "$baseline_file"

if [ "$gated" -eq 0 ]; then
    echo "bench gate FAIL: $baseline_file names no benchmarks" >&2
    exit 1
fi
