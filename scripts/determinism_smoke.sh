#!/bin/sh
# determinism_smoke.sh — the workers-1-vs-N determinism contract every
# qvr smoke enforces, in one place: run the same command twice with
# different worker pool sizes, and the JSON reports must be
# byte-identical. Sharded worker-local state may never leak into the
# science.
#
# usage: determinism_smoke.sh NAME PREFIX W1 W2 FILTER CMD [ARGS...]
#
#   NAME    label for messages ("edge", "capacity", ...)
#   PREFIX  output file prefix: reports land in bin/PREFIX-w$W.json
#   W1, W2  the two worker pool sizes to compare
#   FILTER  grep -vE pattern of lines to EXCLUDE from the diff, for
#           reports whose only legitimate nondeterminism is host
#           wall-clock (capacity scaling study); "" diffs every byte
#   CMD...  the report command; "-workers $W -format json" is appended
#
# With SMOKE_COUNTERS=1 in the environment, each run also writes the
# observability layer's merged counter snapshot (-counters) to
# bin/PREFIX-counters-w$W.ndjson, and the two snapshots are diffed
# byte-for-byte with no filter: counters are integer sums, so not even
# the wall-clock exemption applies. Because -counters also arms the
# CLI-side Refute invariant checker, every counted smoke is a standing
# audit of the stack's bookkeeping.
#
# With SMOKE_SERIES=1, each run additionally records the flight
# recorder's time series (-series) to bin/PREFIX-series-w$W.ndjson and
# the two streams are diffed byte-for-byte, again with no filter: the
# series is keyed on the scenario clock, never wall clock, and writing
# it arms the window-sum audit (every window's counter deltas must sum
# to the final snapshot).
#
# With SMOKE_FIDELITY=1, the command must be a mixed-fidelity run: each
# JSON report is required to carry the surrogate error-bound block
# ("fidelity" with its "checks" and "max_error"), so the byte diff
# provably covers the refute-and-refine bookkeeping — the stratified
# exact sample, the per-metric error bars, the verdict — not just the
# headline metrics.
#
# The unfiltered reports are kept in bin/ for CI to archive.
set -eu

if [ "$#" -lt 6 ]; then
    echo "usage: $0 NAME PREFIX W1 W2 FILTER CMD [ARGS...]" >&2
    exit 2
fi
name=$1
prefix=$2
w1=$3
w2=$4
filter=$5
shift 5

mkdir -p bin
for w in "$w1" "$w2"; do
    echo "$name-smoke: probing on $w worker(s)..."
    # Build the per-run flag list as positional args inside a subshell:
    # every path survives intact even with whitespace (no SC2086
    # word-split string), and the outer "$@" is untouched for the next
    # iteration.
    (
        set -- "$@" -workers "$w" -format json
        if [ "${SMOKE_COUNTERS:-0}" = "1" ]; then
            set -- "$@" -counters "bin/$prefix-counters-w$w.ndjson"
        fi
        if [ "${SMOKE_SERIES:-0}" = "1" ]; then
            set -- "$@" -series "bin/$prefix-series-w$w.ndjson"
        fi
        exec "$@" > "bin/$prefix-w$w.json"
    )
done

for layer in counters series; do
    case "$layer" in
        counters) [ "${SMOKE_COUNTERS:-0}" = "1" ] || continue ;;
        series)   [ "${SMOKE_SERIES:-0}" = "1" ] || continue ;;
    esac
    la="bin/$prefix-$layer-w$w1.ndjson"
    lb="bin/$prefix-$layer-w$w2.ndjson"
    if ! diff "$la" "$lb"; then
        echo "$name $layer determinism FAIL: workers $w1 != workers $w2" >&2
        exit 1
    fi
    echo "$name $layer determinism OK (workers $w1 == workers $w2)"
done

a="bin/$prefix-w$w1.json"
b="bin/$prefix-w$w2.json"
if [ -n "$filter" ]; then
    # Wall-clock-derived lines are the only permitted difference; strip
    # them and every remaining byte must match. (Temp files, not process
    # substitution: this script runs under plain sh.)
    grep -vE "$filter" "$a" > "$a.filtered"
    grep -vE "$filter" "$b" > "$b.filtered"
    if ! diff "$a.filtered" "$b.filtered"; then
        echo "$name determinism FAIL: workers $w1 != workers $w2 (beyond $filter)" >&2
        exit 1
    fi
    rm -f "$a.filtered" "$b.filtered"
else
    if ! diff "$a" "$b"; then
        echo "$name determinism FAIL: workers $w1 != workers $w2" >&2
        exit 1
    fi
fi
echo "$name determinism OK (workers $w1 == workers $w2)"

if [ "${SMOKE_FIDELITY:-0}" = "1" ]; then
    for f in "$a" "$b"; do
        if ! grep -q '"fidelity"' "$f" || ! grep -q '"checks"' "$f" || ! grep -q '"max_error"' "$f"; then
            echo "$name fidelity FAIL: $f carries no surrogate error-bound block" >&2
            exit 1
        fi
    done
    echo "$name fidelity OK: error-bound block present and byte-identical across workers"
fi
