#!/bin/sh
# metrics_smoke.sh — the live-observability scrape check: launch a run
# with the HTTP listener armed (-listen, plus a -serve-seconds linger
# so the endpoints outlive the run), wait for /healthz, wait for the
# flight recorder's final record on /series, then scrape /metrics and
# validate the Prometheus text exposition (0.0.4): HELP'd, TYPE'd,
# qvr_-prefixed samples. The scraped bodies are kept in bin/ for CI to
# inspect on failure.
#
# usage: metrics_smoke.sh CMD [ARGS...]
#
#   CMD...  the run command; "-listen ADDR -serve-seconds 20" is
#           appended, so it must accept the shared obs flags.
set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 CMD [ARGS...]" >&2
    exit 2
fi

# Derive the port from the PID: cheap collision avoidance when two
# smokes share a runner.
port=$((10000 + $$ % 20000))
addr="127.0.0.1:$port"
mkdir -p bin

"$@" -listen "$addr" -serve-seconds 20 > bin/metrics-smoke.json &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# The listener comes up before the run's first phase; give it 20s.
up=0
i=0
while [ "$i" -lt 100 ]; do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
        up=1
        break
    fi
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.2
    i=$((i + 1))
done
if [ "$up" != 1 ]; then
    echo "metrics smoke FAIL: /healthz never came up on $addr" >&2
    exit 1
fi
echo "metrics-smoke: /healthz up on $addr"

# Wait for the run to finish (the stream's final record appears on
# /series), so the archived /metrics scrape shows the whole run.
done=0
i=0
while [ "$i" -lt 300 ]; do
    if curl -fsS "http://$addr/series" 2>/dev/null | grep -q '"kind":"final"'; then
        done=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ "$done" != 1 ]; then
    echo "metrics smoke FAIL: /series never delivered the final record" >&2
    exit 1
fi

curl -fsS "http://$addr/metrics" > bin/metrics-smoke.prom
curl -fsS "http://$addr/series" > bin/metrics-smoke.ndjson

# The run is done (the final record arrived) — no need to sit out the
# rest of the serve linger.
kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
trap - EXIT

# Prometheus text exposition: HELP + TYPE present, counter samples
# bare-valued, everything under the qvr_ prefix.
fail() { echo "metrics smoke FAIL: $1 (see bin/metrics-smoke.prom)" >&2; exit 1; }
grep -q '^# HELP qvr_' bin/metrics-smoke.prom || fail "no # HELP lines"
grep -q '^# TYPE qvr_[a-z0-9_]* counter$' bin/metrics-smoke.prom || fail "no counter # TYPE lines"
grep -q '^# TYPE qvr_[a-z0-9_]* histogram$' bin/metrics-smoke.prom || fail "no histogram # TYPE lines"
grep -Eq '^qvr_[a-z0-9_]+ [0-9]+$' bin/metrics-smoke.prom || fail "no counter samples"
grep -Eq '^qvr_[a-z0-9_]+_bucket\{le="[^"]*"\} [0-9]+$' bin/metrics-smoke.prom || fail "no histogram buckets"
if grep -vE '^(# (HELP|TYPE) qvr_|qvr_)' bin/metrics-smoke.prom | grep -q .; then
    fail "lines outside the qvr_ namespace"
fi
helps=$(grep -c '^# HELP qvr_' bin/metrics-smoke.prom)
types=$(grep -c '^# TYPE qvr_' bin/metrics-smoke.prom)
if [ "$helps" != "$types" ]; then
    fail "$helps HELP lines vs $types TYPE lines"
fi
echo "metrics scrape OK: $helps metrics HELP'd and TYPE'd on /metrics, final series on /series"
